"""Unit tests for the pluggable visited-state stores (repro.check.store)."""

import pickle

import pytest

from repro.check.store import (
    ExactStore,
    FingerprintStore,
    canonical,
    fingerprint,
    make_store,
)
from repro.csp.env import Env
from repro.semantics.state import ProcState, RvState


class TestMakeStore:
    def test_by_name(self):
        assert isinstance(make_store("exact"), ExactStore)
        assert isinstance(make_store("fingerprint"), FingerprintStore)

    def test_default_is_exact(self):
        assert make_store().name == "exact"

    def test_instance_passthrough(self):
        store = FingerprintStore(bits=16)
        assert make_store(store) is store

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown store"):
            make_store("bloom")


class TestExactStore:
    def test_add_dedups(self):
        store = ExactStore()
        assert store.add("a") and not store.add("a")
        assert len(store) == 1 and "a" in store

    def test_parent_pointers_support_traces(self):
        store = ExactStore()
        store.add("root", None)
        store.add("child", ("root", "step"))
        assert store.supports_traces
        assert store.parent_of("root") is None
        assert store.parent_of("child") == ("root", "step")

    def test_no_collisions_ever(self):
        store = ExactStore()
        for i in range(1000):
            store.add(i)
        assert store.collisions == 0

    def test_approx_bytes_counts_parent_payloads(self):
        bare, with_parents = ExactStore(), ExactStore()
        bare.add("s0", None)
        with_parents.add("s0", None)
        for i in range(1, 50):
            bare.add(f"s{i}", None)
            with_parents.add(f"s{i}", (f"s{i - 1}", ("some", "action", i)))
        assert with_parents.approx_bytes() > bare.approx_bytes()

    def test_empty_store_is_zero_bytes(self):
        assert ExactStore().approx_bytes() == 0


class TestFingerprintStore:
    def test_add_dedups_without_keeping_states(self):
        store = FingerprintStore()
        assert store.add("a") and not store.add("a")
        assert len(store) == 1 and "a" in store
        assert not store.supports_traces
        with pytest.raises(KeyError):
            store.parent_of("a")

    def test_no_collisions_on_distinct_small_space(self):
        store = FingerprintStore()
        for i in range(10_000):
            assert store.add(i)
        assert store.collisions == 0
        assert len(store) == 10_000

    def test_truncated_bits_detect_collisions(self):
        # 8-bit primary fingerprints collide for sure across 1000 states;
        # the independent check hash must notice (and count) them.
        store = FingerprintStore(bits=8)
        for i in range(1000):
            store.add(i)
        assert len(store) <= 256
        assert store.collisions >= 1000 - 256

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            FingerprintStore(bits=0)
        with pytest.raises(ValueError):
            FingerprintStore(bits=65)

    def test_approx_bytes_far_below_exact(self):
        exact, compact = ExactStore(), FingerprintStore()
        for i in range(2000):
            state = (("a" * 50, i), ("b" * 50, i), i)
            exact.add(state, ((("p",) * 20), "action"))
            compact.add(state)
        assert compact.approx_bytes() < exact.approx_bytes() / 3


class TestCanonicalEncoding:
    def test_plain_hashables_pass_through(self):
        assert canonical(7) == 7
        assert canonical(("a", 1)) == ("a", 1)

    def test_frozensets_are_ordered(self):
        e1 = Env({"S": frozenset(["a", "b", "c"]), "o": None})
        e2 = Env({"S": frozenset(["c", "a", "b"]), "o": None})
        p1, p2 = ProcState("s", e1), ProcState("s", e2)
        assert canonical(p1) == canonical(p2)
        assert fingerprint(p1) == fingerprint(p2)

    def test_frozenset_distinct_from_tuple(self):
        assert canonical(frozenset({1})) != canonical((1,))

    def test_fingerprint_is_64_bit_and_stable_across_pickle(self):
        state = RvState(home=ProcState("h", Env({"o": 2})),
                        remotes=(ProcState("r", Env()),) * 2)
        fp = fingerprint(state)
        assert 0 <= fp < 2 ** 64
        assert fingerprint(pickle.loads(pickle.dumps(state))) == fp

    def test_salt_gives_independent_fingerprint(self):
        assert fingerprint("state") != fingerprint("state", salt=b"check")

    def test_distinct_states_distinct_fingerprints(self):
        # not guaranteed in theory, but 64 bits over a handful of states
        # colliding would mean the encoding is broken
        states = [RvState(home=ProcState("h", Env({"o": i})),
                          remotes=(ProcState("r", Env()),))
                  for i in range(100)]
        assert len({fingerprint(s) for s in states}) == 100


# ---------------------------------------------------------------------------
# partitioned stores (distributed-SPIN ownership)
# ---------------------------------------------------------------------------

from repro.check.store import (  # noqa: E402
    PartitionedExactStore,
    PartitionedFingerprintStore,
    make_partitioned_store,
    partition_index,
    partition_of,
)


class TestPartitionRouter:
    def test_index_in_range(self):
        for partitions in (1, 2, 3, 7, 64):
            for fp in (0, 1, 2**32, 2**63, 2**64 - 1):
                assert 0 <= partition_index(fp, partitions) < partitions

    def test_ranges_are_contiguous_and_monotone(self):
        # owner-computes relies on each partition owning one contiguous
        # fingerprint range: the index never decreases as fp grows
        fps = sorted([0, 17, 2**16, 2**40, 2**63, 2**63 + 1, 2**64 - 1])
        idx = [partition_index(fp, 5) for fp in fps]
        assert idx == sorted(idx)

    def test_single_partition_owns_everything(self):
        assert partition_index(0, 1) == 0
        assert partition_index(2**64 - 1, 1) == 0

    def test_partition_of_matches_fingerprint_route(self):
        assert partition_of("state", 4) == \
            partition_index(fingerprint("state"), 4)

    def test_spread_is_roughly_uniform(self):
        counts = [0] * 4
        for i in range(4000):
            counts[partition_of(("s", i), 4)] += 1
        assert min(counts) > 500  # blake2b can't be this lopsided


class TestPartitionedFingerprintStore:
    def test_membership_matches_unsharded_store(self):
        plain = FingerprintStore()
        sharded = PartitionedFingerprintStore(3)
        states = [("state", i % 700) for i in range(2000)]
        for state in states:
            assert plain.add(state) == sharded.add(state)
        assert len(plain) == len(sharded) == 700
        assert sharded.collisions == plain.collisions == 0

    def test_membership_matches_with_spill(self, tmp_path):
        plain = FingerprintStore()
        sharded = PartitionedFingerprintStore(
            3, spill_dir=tmp_path, spill_threshold=16)
        states = [("state", i % 700) for i in range(2000)]
        for state in states:
            assert plain.add(state) == sharded.add(state)
        assert len(sharded) == 700
        assert sharded.spill_bytes() > 0
        assert sum(r["spill_merges"] for r in sharded.partition_rows()) > 0
        sharded.close()

    def test_truncated_bits_detect_collisions(self):
        store = PartitionedFingerprintStore(4, bits=8)
        for i in range(1000):
            store.add(("state", i))
        # bits only truncates the *stored* key; routing uses the full
        # fingerprint, so all four partitions still get traffic
        rows = store.partition_rows()
        assert all(r["probes"] > 0 for r in rows)
        assert store.collisions >= 1
        assert store.collisions == sum(r["collisions"] for r in rows)

    def test_probe_predicts_add_without_mutation(self):
        store = PartitionedFingerprintStore(2)
        key, present = store.probe("s")
        assert not present
        assert len(store) == 0  # probe never admits
        store.add("s")
        key2, present2 = store.probe("s")
        assert present2 and key2 == key
        assert store.partition_rows()[partition_of("s", 2)]["probes"] == 1

    def test_rows_partition_owned_sums_to_len(self, tmp_path):
        store = PartitionedFingerprintStore(
            4, spill_dir=tmp_path, spill_threshold=8)
        for i in range(300):
            store.add(("state", i))
        rows = store.partition_rows()
        assert sum(r["owned"] for r in rows) == len(store) == 300
        store.close()

    def test_approx_bytes_excludes_spill(self, tmp_path):
        resident = PartitionedFingerprintStore(1)
        spilling = PartitionedFingerprintStore(
            1, spill_dir=tmp_path, spill_threshold=8)
        for i in range(500):
            resident.add(("state", i))
            spilling.add(("state", i))
        # nearly everything moved to disk, so the resident estimate of
        # the spilling store must be dominated by the bit filter, not
        # 500 hot entries
        hot_part = spilling.approx_bytes() - 2 * 1024 * 1024
        assert hot_part < resident.approx_bytes()
        assert spilling.spill_bytes() > 0
        spilling.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="partitions"):
            PartitionedFingerprintStore(0)
        with pytest.raises(ValueError, match="bits"):
            PartitionedFingerprintStore(2, bits=65)
        with pytest.raises(ValueError, match="threshold"):
            PartitionedFingerprintStore(2, spill_threshold=0)

    def test_no_parent_pointers(self):
        store = PartitionedFingerprintStore(2)
        store.add("s")
        with pytest.raises(KeyError):
            store.parent_of("s")


class TestPartitionedExactStore:
    def test_membership_matches_classic_exact(self):
        classic, delta = ExactStore(), PartitionedExactStore(2)
        states = [("state", "x" * 40, i % 300) for i in range(900)]
        prev = None
        for state in states:
            parent = None if prev is None else (prev, ("act", state[2]))
            assert classic.add(state, parent) == delta.add(state, parent)
            prev = state
        assert len(classic) == len(delta) == 300
        assert delta.collisions == 0

    def test_action_trace_replays_parent_chain(self):
        store = PartitionedExactStore(1)
        store.add("root", None)
        store.add("a", ("root", "step1"))
        store.add("b", ("a", "step2"))
        assert store.supports_traces
        assert store.action_trace("root") == []
        assert store.action_trace("b") == ["step1", "step2"]

    def test_compression_shrinks_similar_states(self):
        # reachable states are small deltas of the initial state; the
        # zdict-deflate keys must exploit that
        compressed = PartitionedExactStore(1, compress=True)
        raw = PartitionedExactStore(1, compress=False)
        base = tuple(("component", "idle", i) for i in range(30))
        for i in range(200):
            state = base[:15] + (("component", "busy", i),) + base[16:]
            compressed.add(state)
            raw.add(state)
        assert len(compressed) == len(raw) == 200
        # ratio is raw canonical bytes / stored key bytes (>= 1 = winning)
        assert compressed.compression_ratio() > 2.0
        assert compressed.approx_bytes() < raw.approx_bytes()

    def test_approx_bytes_far_below_classic_exact(self):
        class Obj:
            def __init__(self, i):
                self.payload = ("p" * 60, i % 400)

            def __eq__(self, other):
                return self.payload == other.payload

            def __hash__(self):
                return hash(self.payload)

        classic, delta = ExactStore(), PartitionedExactStore(1)
        for i in range(1200):
            classic.add(Obj(i))
            delta.add(Obj(i))
        # classic keeps the state objects + their memo caches alive;
        # the delta store keeps 16 bytes + a compressed blob per state
        assert delta.approx_bytes() < classic.approx_bytes()

    def test_probe_predicts_add(self):
        store = PartitionedExactStore(1)
        _key, present = store.probe("s")
        assert not present and len(store) == 0
        store.add("s")
        assert store.probe("s") == (_key, True)


class TestMakePartitionedStore:
    def test_kinds(self):
        assert isinstance(make_partitioned_store("exact", 2),
                          PartitionedExactStore)
        fp = make_partitioned_store("fingerprint", 3)
        assert isinstance(fp, PartitionedFingerprintStore)
        assert fp.partitions == 3

    def test_exact_rejects_spill(self, tmp_path):
        with pytest.raises(ValueError, match="spill"):
            make_partitioned_store("exact", 2, spill_dir=tmp_path)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown store"):
            make_partitioned_store("bloom", 2)


class TestExactStoreCacheMetering:
    def test_state_caches_metered_for_real_states(self):
        # the encoding layer pins _blob_cache/_key_cache/_hash_cache on
        # state __dict__s; approx_bytes must charge for them (they were
        # the 2-3x undercount before the detail split existed)
        store = ExactStore()
        states = [ProcState("s", Env({"o": i})) for i in range(50)]
        for state in states:
            fingerprint(state)  # populate the memo caches
            store.add(state)
        detail = store.approx_bytes_detail()
        assert detail["state_caches"] > 0
        assert store.approx_bytes() == \
            detail["entries"] + detail["state_caches"]

    def test_plain_tuples_have_no_cache_cost(self):
        store = ExactStore()
        for i in range(50):
            store.add(("s", i))
        assert store.approx_bytes_detail()["state_caches"] == 0
