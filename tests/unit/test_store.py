"""Unit tests for the pluggable visited-state stores (repro.check.store)."""

import pickle

import pytest

from repro.check.store import (
    ExactStore,
    FingerprintStore,
    canonical,
    fingerprint,
    make_store,
)
from repro.csp.env import Env
from repro.semantics.state import ProcState, RvState


class TestMakeStore:
    def test_by_name(self):
        assert isinstance(make_store("exact"), ExactStore)
        assert isinstance(make_store("fingerprint"), FingerprintStore)

    def test_default_is_exact(self):
        assert make_store().name == "exact"

    def test_instance_passthrough(self):
        store = FingerprintStore(bits=16)
        assert make_store(store) is store

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown store"):
            make_store("bloom")


class TestExactStore:
    def test_add_dedups(self):
        store = ExactStore()
        assert store.add("a") and not store.add("a")
        assert len(store) == 1 and "a" in store

    def test_parent_pointers_support_traces(self):
        store = ExactStore()
        store.add("root", None)
        store.add("child", ("root", "step"))
        assert store.supports_traces
        assert store.parent_of("root") is None
        assert store.parent_of("child") == ("root", "step")

    def test_no_collisions_ever(self):
        store = ExactStore()
        for i in range(1000):
            store.add(i)
        assert store.collisions == 0

    def test_approx_bytes_counts_parent_payloads(self):
        bare, with_parents = ExactStore(), ExactStore()
        bare.add("s0", None)
        with_parents.add("s0", None)
        for i in range(1, 50):
            bare.add(f"s{i}", None)
            with_parents.add(f"s{i}", (f"s{i - 1}", ("some", "action", i)))
        assert with_parents.approx_bytes() > bare.approx_bytes()

    def test_empty_store_is_zero_bytes(self):
        assert ExactStore().approx_bytes() == 0


class TestFingerprintStore:
    def test_add_dedups_without_keeping_states(self):
        store = FingerprintStore()
        assert store.add("a") and not store.add("a")
        assert len(store) == 1 and "a" in store
        assert not store.supports_traces
        with pytest.raises(KeyError):
            store.parent_of("a")

    def test_no_collisions_on_distinct_small_space(self):
        store = FingerprintStore()
        for i in range(10_000):
            assert store.add(i)
        assert store.collisions == 0
        assert len(store) == 10_000

    def test_truncated_bits_detect_collisions(self):
        # 8-bit primary fingerprints collide for sure across 1000 states;
        # the independent check hash must notice (and count) them.
        store = FingerprintStore(bits=8)
        for i in range(1000):
            store.add(i)
        assert len(store) <= 256
        assert store.collisions >= 1000 - 256

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            FingerprintStore(bits=0)
        with pytest.raises(ValueError):
            FingerprintStore(bits=65)

    def test_approx_bytes_far_below_exact(self):
        exact, compact = ExactStore(), FingerprintStore()
        for i in range(2000):
            state = (("a" * 50, i), ("b" * 50, i), i)
            exact.add(state, ((("p",) * 20), "action"))
            compact.add(state)
        assert compact.approx_bytes() < exact.approx_bytes() / 3


class TestCanonicalEncoding:
    def test_plain_hashables_pass_through(self):
        assert canonical(7) == 7
        assert canonical(("a", 1)) == ("a", 1)

    def test_frozensets_are_ordered(self):
        e1 = Env({"S": frozenset(["a", "b", "c"]), "o": None})
        e2 = Env({"S": frozenset(["c", "a", "b"]), "o": None})
        p1, p2 = ProcState("s", e1), ProcState("s", e2)
        assert canonical(p1) == canonical(p2)
        assert fingerprint(p1) == fingerprint(p2)

    def test_frozenset_distinct_from_tuple(self):
        assert canonical(frozenset({1})) != canonical((1,))

    def test_fingerprint_is_64_bit_and_stable_across_pickle(self):
        state = RvState(home=ProcState("h", Env({"o": 2})),
                        remotes=(ProcState("r", Env()),) * 2)
        fp = fingerprint(state)
        assert 0 <= fp < 2 ** 64
        assert fingerprint(pickle.loads(pickle.dumps(state))) == fp

    def test_salt_gives_independent_fingerprint(self):
        assert fingerprint("state") != fingerprint("state", salt=b"check")

    def test_distinct_states_distinct_fingerprints(self):
        # not guaranteed in theory, but 64 bits over a handful of states
        # colliding would mean the encoding is broken
        states = [RvState(home=ProcState("h", Env({"o": i})),
                          remotes=(ProcState("r", Env()),))
                  for i in range(100)]
        assert len({fingerprint(s) for s in states}) == 100
