"""Unit tests for the ``repro lint`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint", "migratory"])
        assert args.nodes == 4 and args.buffer == 2
        assert not args.json and not args.strict and args.select == []

    def test_all_accepted(self):
        assert build_parser().parse_args(["lint", "all"]).protocol == "all"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "mosi"])


class TestTextOutput:
    def test_clean_protocol_exits_zero(self, capsys):
        assert main(["lint", "migratory"]) == 0
        out = capsys.readouterr().out
        assert "lint report for migratory-async" in out
        assert "0 error(s)" in out

    def test_all_protocols_lint_clean(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("mesi", "migratory", "invalidate", "msi"):
            assert f"lint report for {name}-async" in out

    def test_transient_pass_included(self, capsys):
        # lint analyzes the refined protocol, so P3403 always appears
        main(["lint", "migratory"])
        assert "P3403" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_parses_and_is_structured(self, capsys):
        assert main(["lint", "migratory", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"] == "migratory-async"
        assert payload["summary"]["errors"] == 0
        assert payload["passes"][0] == "restrictions"
        assert all({"code", "severity", "location", "message"} <=
                   set(d) for d in payload["diagnostics"])

    def test_codes_are_registered(self, capsys):
        from repro.analysis import CODES
        main(["lint", "msi", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert all(d["code"] in CODES for d in payload["diagnostics"])


class TestExitCodes:
    def test_strict_fails_on_buffer_warning(self, capsys):
        # default k=2 is below the n=4 demand bound -> P3201 warning
        assert main(["lint", "migratory", "--strict"]) == 1

    def test_strict_passes_when_buffer_covers_demand(self, capsys):
        assert main(["lint", "migratory", "--strict", "--buffer", "4"]) == 0
        assert "P3202" in capsys.readouterr().out


class TestSelect:
    def test_select_filters_codes(self, capsys):
        assert main(["lint", "migratory", "--select", "P3301"]) == 0
        out = capsys.readouterr().out
        assert "P3301" in out
        assert "P3201" not in out and "P3403" not in out

    def test_select_is_repeatable(self, capsys):
        main(["lint", "migratory", "--json",
              "--select", "P3301", "--select", "P3403"])
        payload = json.loads(capsys.readouterr().out)
        assert {d["code"] for d in payload["diagnostics"]} == \
            {"P3301", "P3403"}


class TestIgnore:
    def test_ignore_drops_codes(self, capsys):
        assert main(["lint", "migratory", "--ignore", "P3403"]) == 0
        out = capsys.readouterr().out
        assert "P3403" not in out
        assert "P3301" in out  # everything else stays

    def test_ignore_is_repeatable(self, capsys):
        main(["lint", "migratory", "--json",
              "--ignore", "P3403", "--ignore", "P3301"])
        payload = json.loads(capsys.readouterr().out)
        assert not {"P3403", "P3301"} & \
            {d["code"] for d in payload["diagnostics"]}

    def test_ignored_warning_no_longer_trips_strict(self):
        # k=2 under the n=4 demand bound raises the P3201 warning
        assert main(["lint", "migratory", "--strict"]) == 1
        assert main(["lint", "migratory", "--strict",
                     "--ignore", "P3201"]) == 0

    def test_unknown_code_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "migratory", "--ignore", "P9999"])

    def test_select_ignore_overlap_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "migratory",
                  "--select", "P3301", "--ignore", "P3301"])


class TestHelpText:
    def test_epilog_shows_usage_examples(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--help"])
        out = capsys.readouterr().out
        assert "--ignore" in out
        assert "--strict" in out
        assert "repro lint" in out  # worked examples, not just options


class TestCertificateCodes:
    def test_shipped_protocols_report_zero_p44_errors(self, capsys):
        assert main(["lint", "all", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 4
        for payload in reports:
            errors = [d for d in payload["diagnostics"]
                      if d["code"].startswith("P44")
                      and d["severity"] == "error"]
            assert not errors, (payload["subject"], errors)

    def test_certificate_inventory_surfaces_in_lint(self, capsys):
        main(["lint", "migratory"])
        assert "P4405" in capsys.readouterr().out


class TestPrefixSelection:
    def test_select_family_prefix(self, capsys):
        assert main(["lint", "migratory", "--json", "--select", "P45"]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes and all(c.startswith("P45") for c in codes)

    def test_prefix_and_exact_code_mix(self, capsys):
        main(["lint", "migratory", "--json",
              "--select", "P33", "--select", "P4505"])
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "P4505" in codes
        assert codes - {"P4505"} <= {"P3301", "P3302", "P3303"}

    def test_ignore_family_prefix(self, capsys):
        assert main(["lint", "migratory", "--ignore", "P45"]) == 0
        out = capsys.readouterr().out
        assert "P45" not in out
        assert "P3301" in out

    def test_prefix_ignore_untrips_strict(self):
        # the only migratory warning at n=4 is the P32xx buffer bound
        assert main(["lint", "migratory", "--strict"]) == 1
        assert main(["lint", "migratory", "--strict", "--ignore", "P32"]) == 0

    def test_unknown_prefix_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "migratory", "--select", "P99"])
        assert "P99" in str(excinfo.value)

    def test_overlapping_prefixes_rejected(self):
        # P45 expands to a superset of P4505: the overlap must be caught
        with pytest.raises(SystemExit):
            main(["lint", "migratory",
                  "--select", "P45", "--ignore", "P4505"])


class TestSarifOutput:
    def test_sarif_is_valid_and_versioned(self, capsys):
        assert main(["lint", "migratory", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_rules_cover_results_and_levels_map(self, capsys):
        main(["lint", "all", "--format", "sarif"])
        run = json.loads(capsys.readouterr().out)["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [r["id"] for r in rules]
        assert rule_ids == sorted(rule_ids)
        for result in run["results"]:
            assert result["ruleId"] == rules[result["ruleIndex"]]["id"]
            assert result["level"] in {"note", "warning", "error"}
            location = result["locations"][0]["logicalLocations"][0]
            assert location["fullyQualifiedName"]

    def test_coherence_discharge_appears_as_note(self, capsys):
        main(["lint", "msi", "--format", "sarif"])
        run = json.loads(capsys.readouterr().out)["runs"][0]
        discharges = [r for r in run["results"] if r["ruleId"] == "P4601"]
        assert discharges and all(r["level"] == "note" for r in discharges)

    def test_format_json_is_json_alias(self, capsys):
        assert main(["lint", "migratory", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"] == "migratory-async"
