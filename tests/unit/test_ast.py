"""Unit tests for the protocol AST (repro.csp.ast)."""

import pytest

from repro.csp.ast import (
    DATA,
    AnySender,
    ConstTarget,
    ExprTarget,
    Input,
    Output,
    PredSender,
    ProcessDef,
    ProcessKind,
    Protocol,
    SetSender,
    StateDef,
    Tau,
    VarSender,
    VarTarget,
)
from repro.csp.env import Env
from repro.errors import SpecError


class TestSenderPatterns:
    def test_any_sender_matches_everyone(self):
        assert AnySender().matches(Env(), 0)
        assert AnySender().matches(Env(), 17)

    def test_var_sender(self):
        env = Env({"o": 3})
        assert VarSender("o").matches(env, 3)
        assert not VarSender("o").matches(env, 2)

    def test_var_sender_none_matches_nobody(self):
        env = Env({"o": None})
        assert not VarSender("o").matches(env, 0)

    def test_set_sender(self):
        env = Env({"S": frozenset({1, 4})})
        assert SetSender("S").matches(env, 4)
        assert not SetSender("S").matches(env, 2)

    def test_set_sender_requires_frozenset(self):
        assert not SetSender("S").matches(Env({"S": None}), 0)

    def test_pred_sender(self):
        pat = PredSender(lambda env, i: i % 2 == 0, name="even")
        assert pat.matches(Env(), 2)
        assert not pat.matches(Env(), 3)
        assert "even" in pat.describe()


class TestTargets:
    def test_var_target(self):
        assert VarTarget("j").eval(Env({"j": 5})) == 5

    def test_var_target_non_int_raises(self):
        with pytest.raises(SpecError):
            VarTarget("j").eval(Env({"j": None}))

    def test_const_target(self):
        assert ConstTarget(2).eval(Env()) == 2

    def test_expr_target(self):
        target = ExprTarget(lambda env: min(env["S"]), name="minS")
        assert target.eval(Env({"S": frozenset({3, 7})})) == 3
        assert "minS" in target.describe()


class TestGuards:
    def test_output_defaults(self):
        guard = Output(msg="m", to="s")
        assert guard.enabled(Env())
        assert guard.eval_payload(Env()) is None
        env = Env({"x": 1})
        assert guard.apply_update(env) == env

    def test_output_cond_and_update(self):
        guard = Output(msg="m", to="s",
                       cond=lambda env: env["x"] > 0,
                       update=lambda env: env.set("x", 0))
        assert guard.enabled(Env({"x": 1}))
        assert not guard.enabled(Env({"x": 0}))
        assert guard.apply_update(Env({"x": 1}))["x"] == 0

    def test_input_accepts_sender_pattern(self):
        guard = Input(msg="m", to="s", sender=VarSender("o"))
        env = Env({"o": 1})
        assert guard.accepts(env, 1, None)
        assert not guard.accepts(env, 0, None)

    def test_input_cond(self):
        guard = Input(msg="m", to="s", sender=AnySender(),
                      cond=lambda env, sender, value: value == DATA)
        assert guard.accepts(Env(), 0, DATA)
        assert not guard.accepts(Env(), 0, "other")

    def test_input_complete_binds_in_order(self):
        guard = Input(msg="m", to="s", sender=AnySender(),
                      bind_sender="who", bind_value="val",
                      update=lambda env: env.set("seen", env["who"]))
        env = Env({"who": None, "val": None, "seen": None})
        done = guard.complete(env, 7, "payload")
        assert done["who"] == 7
        assert done["val"] == "payload"
        assert done["seen"] == 7

    def test_tau_enabled_and_update(self):
        guard = Tau(label="evict", to="s",
                    cond=lambda env: env["x"],
                    update=lambda env: env.set("x", False))
        assert guard.enabled(Env({"x": True}))
        assert not guard.enabled(Env({"x": False}))
        assert guard.apply_update(Env({"x": True}))["x"] is False

    def test_describe_strings(self):
        assert Output(msg="gr", to="s", target=VarTarget("j")).describe() == "r(j)!gr"
        assert Input(msg="req", to="s", sender=AnySender(),
                     bind_value="d").describe() == "r(i)?req(d)"
        assert Tau(label="rw", to="s").describe() == "τ:rw"


class TestStateDef:
    def test_classification_communication(self):
        state = StateDef("s", (Output(msg="m", to="s"),))
        assert state.is_communication
        assert not state.is_internal

    def test_classification_internal(self):
        state = StateDef("s", (Tau(label="t", to="s"),))
        assert state.is_internal
        assert not state.is_communication

    def test_classification_terminal(self):
        assert StateDef("s").is_terminal

    def test_guard_partitions(self):
        guards = (Output(msg="a", to="s"), Input(msg="b", to="s"),
                  Tau(label="c", to="s"))
        state = StateDef("s", guards)
        assert [g.msg for g in state.outputs] == ["a"]
        assert [g.msg for g in state.inputs] == ["b"]
        assert [g.label for g in state.taus] == ["c"]


class TestProcessDef:
    def _one_state(self):
        return {"s": StateDef("s", (Tau(label="loop", to="s"),))}

    def test_requires_known_initial_state(self):
        with pytest.raises(SpecError):
            ProcessDef("p", ProcessKind.REMOTE, self._one_state(), "missing")

    def test_rejects_dangling_guard_target(self):
        states = {"s": StateDef("s", (Tau(label="t", to="nowhere"),))}
        with pytest.raises(SpecError):
            ProcessDef("p", ProcessKind.REMOTE, states, "s")

    def test_rejects_unknown_kind(self):
        with pytest.raises(SpecError):
            ProcessDef("p", "neither", self._one_state(), "s")

    def test_state_lookup_error(self):
        proc = ProcessDef("p", ProcessKind.REMOTE, self._one_state(), "s")
        with pytest.raises(SpecError):
            proc.state("zzz")

    def test_message_types(self):
        states = {
            "a": StateDef("a", (Output(msg="req", to="b"),)),
            "b": StateDef("b", (Input(msg="gr", to="a"),)),
        }
        proc = ProcessDef("p", ProcessKind.REMOTE, states, "a")
        assert proc.message_types == frozenset({"req", "gr"})


class TestProtocol:
    def test_kind_enforcement(self, migratory):
        with pytest.raises(SpecError):
            Protocol("bad", home=migratory.remote, remote=migratory.remote)
        with pytest.raises(SpecError):
            Protocol("bad", home=migratory.home, remote=migratory.home)

    def test_message_types_union(self, migratory):
        assert migratory.message_types == frozenset(
            {"req", "gr", "LR", "inv", "ID"})
