"""Directed tests for rarely-hit branches (constructed states).

These cover behaviour the organic protocol runs rarely or never reach:
ablation fallbacks, buffer-full victim nacking, malformed-plan rejection,
and rendering corners.
"""

import pytest

from repro import RefinementConfig, migratory_protocol, refine
from repro.check.stats import Counterexample
from repro.csp.env import Env
from repro.errors import RefinementError, SemanticsError
from repro.refine.plan import REMOTE, HOME_SIDE, FusedPair
from repro.refine.reqreply import _reject_overlaps
from repro.semantics.asynchronous import (
    AsyncState,
    AsyncSystem,
    BufEntry,
    DeliverToHome,
    DeliverToRemote,
    HomeNode,
    HomeStep,
    RemoteNode,
    TRANS,
)
from repro.semantics.network import NACK, REQ, Channels, Msg


def home_env():
    return Env({"o": None, "j": None, "mem": "DATA"})


def remote_env():
    return Env({"d": "DATA"})


def make_state(system, home, remotes, channels=None):
    return AsyncState(home=home, remotes=tuple(remotes),
                      channels=channels or Channels.empty(len(remotes)))


class TestAckBufferAblation:
    def test_t3_with_full_buffer_nacks_instead(self):
        """Without the ack-buffer reservation, the implicit-nack request
        can find the buffer full and must itself be nacked (degraded but
        defined behaviour)."""
        refined = refine(migratory_protocol(), RefinementConfig(
            use_reqreply=False, reserve_ack_buffer=False,
            reserve_progress_buffer=False))
        system = AsyncSystem(refined, 3)
        # home transient in I1 awaiting r0's inv-ack, buffer full of
        # useless reqs from r1 and r2; r0's LR request arrives (T3)
        home = HomeNode(
            state="I1", env=home_env().update({"o": 0, "j": 1}),
            mode=TRANS, awaiting=0, pending_out=0,
            buffer=(BufEntry(1, "req"), BufEntry(2, "req")))
        remotes = [
            RemoteNode(state="V.lr", env=remote_env(), mode=TRANS,
                       pending_out=0),
            RemoteNode(state="I", env=remote_env(), mode=TRANS,
                       pending_out=0),
            RemoteNode(state="I", env=remote_env(), mode=TRANS,
                       pending_out=0),
        ]
        channels = Channels.empty(3).send_to_home(
            0, Msg(kind=REQ, msg="LR", payload="DATA"))
        state = make_state(system, home, remotes, channels)
        step = next(s for s in system.steps(state)
                    if s.action == DeliverToHome(remote=0))
        after = step.state
        assert after.home.mode == "idle"          # implicit nack happened
        assert len(after.home.buffer) == 2        # but nothing was buffered
        assert after.channels.head_to_remote(0).kind == NACK

    def test_t3_with_reservation_and_full_buffer_is_a_bug(self):
        """With the reservation active, a full buffer in a transient home
        is a semantics violation and must raise, not limp along."""
        refined = refine(migratory_protocol(),
                         RefinementConfig(use_reqreply=False))
        system = AsyncSystem(refined, 3)
        home = HomeNode(
            state="I1", env=home_env().update({"o": 0, "j": 1}),
            mode=TRANS, awaiting=0, pending_out=0,
            buffer=(BufEntry(1, "req"), BufEntry(2, "req")))
        remotes = [RemoteNode(state="V.lr", env=remote_env(), mode=TRANS,
                              pending_out=0),
                   RemoteNode(state="I", env=remote_env(), mode=TRANS,
                              pending_out=0),
                   RemoteNode(state="I", env=remote_env(), mode=TRANS,
                              pending_out=0)]
        channels = Channels.empty(3).send_to_home(
            0, Msg(kind=REQ, msg="LR", payload="DATA"))
        state = make_state(system, home, remotes, channels)
        with pytest.raises(SemanticsError, match="ack-buffer reservation"):
            system.steps(state)


class TestHomeC2Eviction:
    def test_full_buffer_victim_nacked_to_free_ack_slot(self):
        """Row C2(a): 'a nack may be generated' to free a slot."""
        refined = refine(migratory_protocol(),
                         RefinementConfig(use_reqreply=False))
        system = AsyncSystem(refined, 3)
        # home idle in I1 (wants to send inv to r0); buffer full of reqs
        # that satisfy nothing in I1
        home = HomeNode(
            state="I1", env=home_env().update({"o": 0, "j": 1}),
            buffer=(BufEntry(1, "req"), BufEntry(2, "req")))
        remotes = [RemoteNode(state="V", env=remote_env()),
                   RemoteNode(state="I", env=remote_env(), mode=TRANS,
                              pending_out=0),
                   RemoteNode(state="I", env=remote_env(), mode=TRANS,
                              pending_out=0)]
        state = make_state(system, home, remotes)
        step = next(s for s in system.steps(state)
                    if isinstance(s.action, HomeStep)
                    and s.action.kind == "C2")
        after = step.state
        assert after.home.mode == TRANS and after.home.awaiting == 0
        assert len(after.home.buffer) == 1          # oldest req evicted
        assert after.home.buffer[0].sender == 2
        assert after.channels.head_to_remote(1).kind == NACK
        assert after.channels.head_to_remote(0).kind == REQ

    def test_all_note_buffer_blocks_c2(self):
        """Notes cannot be nacked; with no evictable entry C2 must wait."""
        refined = refine(migratory_protocol(), RefinementConfig(
            use_reqreply=False, fire_and_forget=frozenset({"LR"})))
        system = AsyncSystem(refined, 3)
        home = HomeNode(
            state="I1", env=home_env().update({"o": 0, "j": 1}),
            buffer=(BufEntry(1, "ID", note=True),
                    BufEntry(2, "ID", note=True)))
        # capacity counts only solid entries, so force the issue by
        # padding with solid-looking... instead: monkey-set capacity 0?
        # Simpler: capacity 2 with 2 solid non-evictable is impossible —
        # note entries don't count against capacity, so C2 proceeds here.
        remotes = [RemoteNode(state="V", env=remote_env()),
                   RemoteNode(state="I", env=remote_env()),
                   RemoteNode(state="I", env=remote_env())]
        state = make_state(system, home, remotes)
        c2 = [s for s in system.steps(state)
              if isinstance(s.action, HomeStep) and s.action.kind == "C2"]
        assert len(c2) == 1  # notes are exempt from capacity: room exists


class TestRemoteBufferDiscipline:
    def test_second_home_request_overflows(self, migratory_refined_plain):
        system = AsyncSystem(migratory_refined_plain, 1)
        node = RemoteNode(state="V", env=remote_env(),
                          buf=BufEntry("h", "inv"))
        home = HomeNode(state="I1", env=home_env().update({"o": 0,
                                                           "j": 0}))
        channels = Channels.empty(1).send_to_remote(
            0, Msg(kind=REQ, msg="inv"))
        state = AsyncState(home=home, remotes=(node,), channels=channels)
        with pytest.raises(SemanticsError, match="buffer overflow"):
            [s for s in system.steps(state)
             if s.action == DeliverToRemote(remote=0)]


class TestHomeT2GuardCycling:
    def test_nack_advances_to_next_output_guard(self):
        """Row T2: after a nack the home 'sends the next request'."""
        from repro.csp.ast import AnySender, VarTarget
        from repro.csp.builder import ProcessBuilder, inp, out, protocol

        # home with TWO output guards in one state, cycling between
        # remotes 0 and 1
        h = ProcessBuilder.home("h", a=0, b=1)
        h.state("s",
                out("m1", target=VarTarget("a"), to="s"),
                out("m2", target=VarTarget("b"), to="s"),
                inp("z", sender=AnySender(), to="s"))
        r = ProcessBuilder.remote("r")
        r.state("p", inp("m1", to="q"), inp("m2", to="q"))
        r.state("q", out("z", to="p"))
        proto = protocol("cycling", h, r)

        from repro import RefinementConfig, refine
        system = AsyncSystem(refine(proto,
                                    RefinementConfig(use_reqreply=False)), 2)
        state = system.initial_state()
        # C2 attempts guard 0 (m1 -> r0)
        step = next(s for s in system.steps(state)
                    if isinstance(s.action, HomeStep))
        assert step.action.detail == "m1→r0"
        # inject a NACK from r0 (as if it refused) and drop the request
        after = step.state
        _req, channels = after.channels.pop(Channels.to_remote(0))
        channels = channels.send_to_home(0, Msg(kind=NACK))
        after = AsyncState(home=after.home, remotes=after.remotes,
                           channels=channels)
        after = next(s for s in system.steps(after)
                     if s.action == DeliverToHome(remote=0)).state
        # T2: the scan resumes at the NEXT guard: m2 -> r1
        step = next(s for s in system.steps(after)
                    if isinstance(s.action, HomeStep))
        assert step.action.detail == "m2→r1"


class TestRemoteC3Nack:
    def test_non_matching_request_nacked_and_kept_waiting(self):
        """Row C3: a request satisfying no guard is nacked; the remote
        keeps waiting in the same state."""
        refined = refine(migratory_protocol(),
                         RefinementConfig(use_reqreply=False))
        system = AsyncSystem(refined, 1)
        # remote passive at I.gr (waiting for gr); home mistakenly sends
        # inv (constructed — cannot happen organically, which is the point)
        node = RemoteNode(state="I.gr", env=remote_env(),
                          buf=BufEntry("h", "inv"))
        home = HomeNode(state="E", env=home_env().update({"o": 0}))
        state = AsyncState(home=home, remotes=(node,),
                           channels=Channels.empty(1))
        from repro.semantics.asynchronous import RemoteC3
        step = next(s for s in system.steps(state)
                    if isinstance(s.action, RemoteC3))
        after = step.state
        assert after.remotes[0].state == "I.gr"      # still waiting
        assert after.remotes[0].buf is None          # request consumed
        assert after.channels.head_to_home(0).kind == NACK


class TestPlanRejection:
    def test_chained_fusion_rejected(self):
        with pytest.raises(RefinementError, match="both a fused request"):
            _reject_overlaps([FusedPair("a", "b", REMOTE),
                              FusedPair("b", "c", HOME_SIDE)])


class TestCounterexampleRendering:
    def test_describe_shows_states_and_actions(self):
        class Thing:
            def __init__(self, label):
                self.label = label

            def describe(self):
                return f"<{self.label}>"

        trace = Counterexample(
            property_name="demo",
            states=[Thing("s0"), Thing("s1")],
            steps=[Thing("a0")])
        text = trace.describe()
        assert "demo" in text
        assert "<s0>" in text and "<a0>" in text and "<s1>" in text

    def test_describe_falls_back_to_repr(self):
        trace = Counterexample("p", states=[1, 2], steps=["go"])
        assert "'go'" in trace.describe() or "go" in trace.describe()


class TestVizFallback:
    def test_reply_destination_fallback(self, migratory):
        from repro.viz.dot import reply_destination
        guard = migratory.home.state("I1").outputs[0]  # inv -> I2
        # asking for a reply message I2 does not contain falls back to the
        # guard's own successor
        assert reply_destination(migratory.home, guard, "zzz") == "I2"
