"""Unit tests for message-flow derivation (repro.analysis.flows)."""

from repro.analysis.flows import (
    HOME_INITIATED,
    NOTIFICATION,
    REMOTE_INITIATED,
    derive_flows,
    flows_pass,
    producible_msgs,
    tau_closure,
)
from repro.csp.ast import AnySender, VarSender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.protocols import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
)
from repro.refine.plan import RefinementConfig


def gap_protocol():
    """Remote can emit 'n' but the home never inputs it: incomplete cover."""
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("a", sender=AnySender(), bind_sender="j", to="h1"))
    h.state("h1", out("g", to="h0", target=VarTarget("j")))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("t", to="r0a"), tau("u", to="r0n"))
    r.state("r0a", out("a", to="r1"))
    r.state("r0n", out("n", to="r0"))
    r.state("r1", inp("g", to="r0"))
    return protocol("gapper", h, r)


class TestLibraryInventories:
    def test_migratory_flows(self, migratory):
        graph = derive_flows(migratory)
        assert graph.stable_states == frozenset({"E", "F"})
        assert graph.complete
        by_name = {f.name: f for f in graph.flows}
        assert set(by_name) == {"req@F", "req@E", "LR@E"}
        assert by_name["req@F"].kind == REMOTE_INITIATED
        assert by_name["LR@E"].kind == NOTIFICATION
        # the E-side grant bounces between invalidate and grant legs
        assert by_name["req@E"].message_cost > by_name["req@F"].message_cost

    def test_all_library_protocols_cover_completely(self, msi, invalidate):
        for proto in (msi, invalidate, mesi_protocol(), migratory_protocol()):
            graph = derive_flows(proto)
            assert graph.complete, graph.describe()
            assert graph.flows

    def test_mesi_stable_states_include_exclusive(self):
        graph = derive_flows(mesi_protocol())
        assert graph.stable_states == frozenset({"F", "Sh", "X"})

    def test_msi_nested_flows_marked(self, msi):
        graph = derive_flows(msi)
        nested = {f.name for f in graph.flows if not f.stable_entry}
        # the upgrade/evict requests that arrive while the home is already
        # mid-transaction root nested (non-stable-entry) flows
        assert "evS@W.send" in nested
        assert "reqU@W.send" in nested
        for f in graph.flows:
            if not f.stable_entry:
                assert f.entry_state not in graph.stable_states

    def test_cycle_flag_set_on_deny_loops(self, invalidate):
        graph = derive_flows(invalidate)
        cyclic = {f.name for f in graph.flows if f.has_cycle}
        assert "reqW@Sh" in cyclic  # deny loop back to the wait state
        assert "reqR@F" not in cyclic

    def test_requester_region_is_tau_closed(self, migratory):
        graph = derive_flows(migratory)
        remote = migratory.remote
        for flow in graph.flows:
            for state in flow.requester_region:
                assert tau_closure(remote, state) <= flow.requester_region


class TestFusionSharing:
    def test_fused_pairs_recorded(self, msi):
        graph = derive_flows(msi)
        assert graph.fused  # section 3.3 pairs chosen by default
        plain = derive_flows(msi, config=RefinementConfig(use_reqreply=False))
        assert plain.fused == ()
        # fusion changes the refined wiring, not the rendezvous count
        assert {f.name for f in graph.flows} == {f.name for f in plain.flows}


class TestCoverage:
    def test_gap_protocol_incomplete(self):
        graph = derive_flows(gap_protocol())
        assert not graph.complete
        assert any("!n" in item for item in graph.uncovered)

    def test_flows_pass_reports_p4501_and_p4506(self, migratory):
        graph = derive_flows(gap_protocol())
        codes = {d.code for d in flows_pass(gap_protocol(), graph=graph)}
        assert {"P4501", "P4506"} <= codes
        clean = derive_flows(migratory)
        codes = {d.code for d in flows_pass(migratory, graph=clean)}
        assert codes == {"P4506"}

    def test_flow_lookup(self, migratory):
        graph = derive_flows(migratory)
        assert graph.flow("req@F").request_msg == "req"
        try:
            graph.flow("nope")
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")


class TestSerialization:
    def test_as_dict_round_trips_to_json(self, msi):
        import json

        graph = derive_flows(msi)
        doc = json.loads(json.dumps(graph.as_dict()))
        assert doc["protocol"] == "msi"
        assert doc["complete"] is True
        assert len(doc["flows"]) == len(graph.flows)
        for flow_doc in doc["flows"]:
            assert {"name", "kind", "request", "events"} <= set(flow_doc)

    def test_describe_mentions_every_flow(self, invalidate):
        graph = derive_flows(invalidate)
        text = graph.describe()
        for flow in graph.flows:
            assert flow.name in text


class TestStaticHelpers:
    def test_tau_closure(self):
        r = ProcessBuilder.remote("r")
        r.state("a", tau("t", to="b"))
        r.state("b", out("m", to="a"))
        proc = r.build()
        assert tau_closure(proc, "a") == frozenset({"a", "b"})
        assert tau_closure(proc, "b") == frozenset({"b"})

    def test_producible_msgs(self):
        r = ProcessBuilder.remote("r")
        r.state("a", tau("t", to="b"))
        r.state("b", out("m", to="a"))
        r.state("c", inp("x", to="a"))
        proc = r.build()
        assert producible_msgs(proc, "a") == frozenset({"m"})
        assert producible_msgs(proc, "c") == frozenset()

    def test_home_initiated_constant_exists(self):
        # the kind taxonomy is part of the public vocabulary
        assert HOME_INITIATED == "home-initiated"
