"""Unit tests for the shared Table 3 harness (repro.bench.table3)."""

from repro.bench.table3 import (
    PAPER_TABLE3,
    Table3Row,
    render_table3,
    table3_rows,
)
from repro.check.stats import ExplorationResult


def fake_result(n_states, completed=True):
    return ExplorationResult(system_name="x", n_states=n_states,
                             n_transitions=n_states * 2, seconds=0.5,
                             completed=completed,
                             stop_reason=None if completed else "budget")


class TestPaperValues:
    def test_all_six_rows_present(self):
        assert len(PAPER_TABLE3) == 6
        assert PAPER_TABLE3[("Migratory", 2)] == ("23163/2.84", "54/0.1")
        assert PAPER_TABLE3[("Invalidate", 6)] == ("Unfinished",
                                                   "228334/18.4")


class TestRow:
    def test_paper_cells_lookup(self):
        row = Table3Row("Migratory", 4, fake_result(10), fake_result(5))
        assert row.paper_cells == ("Unfinished", "235/0.4")

    def test_unknown_row_degrades(self):
        row = Table3Row("Migratory", 3, fake_result(10), fake_result(5))
        assert row.paper_cells == ("?", "?")


class TestRendering:
    def test_render_with_prebuilt_rows(self):
        rows = [Table3Row("Migratory", 2, fake_result(100),
                          fake_result(10)),
                Table3Row("Invalidate", 6, fake_result(0, completed=False),
                          fake_result(50))]
        text = render_table3(rows=rows, budget=123)
        assert "Table 3" in text and "123" in text
        assert "100/0.50" in text
        assert "Unfinished" in text
        assert "23163/2.84" in text  # paper column alongside

    def test_tiny_budget_run(self):
        rows = table3_rows(budget=300, time_budget=15)
        assert len(rows) == 6
        assert {r.protocol for r in rows} == {"Migratory", "Invalidate"}
        # with a 300-state budget the small cells complete, the big don't
        migratory2 = next(r for r in rows
                          if (r.protocol, r.n) == ("Migratory", 2))
        assert migratory2.rendezvous.completed
        invalidate4 = next(r for r in rows
                           if (r.protocol, r.n) == ("Invalidate", 4))
        assert not invalidate4.asynchronous.completed
