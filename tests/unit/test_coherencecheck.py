"""Unit tests for the parameterized coherence verdict (P46xx)."""

import dataclasses
import json

from repro.analysis import analyze_protocol
from repro.analysis.coherencecheck import (
    AbstractCoherenceSystem,
    CoherenceLemma,
    OTHER,
    check_coherence,
    coherencecheck_pass,
    derive_candidate_lemmas,
    _other_send_table,
)
from repro.analysis.flows import derive_flows
from repro.check.explorer import explore
from repro.csp.ast import (
    AnySender,
    ConstTarget,
    PredSender,
    Tau,
    VarSender,
    VarTarget,
)
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.protocols import mesi_protocol
from repro.protocols.invariants import (
    COHERENCE_SPECS,
    CoherenceSpec,
    coherence_invariants,
    coherence_spec_for,
)
from repro.semantics.rendezvous import RendezvousSystem
from repro.viz.msc import render_counterexample_msc


# ---------------------------------------------------------------------------
# fixtures: a protocol the lemma-free abstraction cannot discharge
# ---------------------------------------------------------------------------


def allclear_protocol():
    """Invalidate-style writer flow with an ALLCLEAR shortcut.

    The modified-side remote may answer an invalidation with ``ALLCLEAR``
    (claiming the sharer set is empty) instead of a plain ``IA``.  Other
    is invalidated *before* the concrete sharers (``t0 := max(S)`` and
    Other carries the largest id), so the lemma-free abstraction lets
    Other fake an ``ALLCLEAR`` that wipes concrete sharers out of ``S``
    and grants the writer over a live reader.  The flow-derived wait
    lemma (only processes in the inv-responder region send while engaged)
    blocks exactly that trace, so the checker needs one CEGAR round.
    """
    home = ProcessBuilder.home("allclear-home",
                               o=None, j=None, t0=None, S=frozenset())
    home.state(
        "F",
        inp("reqR", sender=AnySender(), bind_sender="j", to="F.gr"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="W.chk"),
    )
    home.state("F.gr", out("grR", target=VarTarget("j"),
                           update=lambda env: env.update(
                               {"S": env["S"] | frozenset({env["j"]}),
                                "j": None}),
                           to="F"))
    home.state(
        "W.chk",
        tau("done", cond=lambda env: not env["S"], to="W.grant"),
        tau("more", cond=lambda env: bool(env["S"]),
            update=lambda env: env.set("t0", max(env["S"])), to="W.send"),
    )
    home.state("W.send", out("inv", target=VarTarget("t0"), to="W.wait"))
    home.state(
        "W.wait",
        inp("IA", sender=VarSender("t0"),
            update=lambda env: env.update(
                {"S": env["S"] - frozenset({env["t0"]}), "t0": None}),
            to="W.chk"),
        inp("ALLCLEAR", sender=VarSender("t0"),
            update=lambda env: env.update({"S": frozenset(), "t0": None}),
            to="W.chk"),
    )
    home.state("W.grant", out("grW", target=VarTarget("j"),
                              update=lambda env: env.update(
                                  {"o": env["j"], "j": None}),
                              to="E"))
    home.state("E", inp("rel", sender=VarSender("o"),
                        update=lambda env: env.set("o", None), to="F"))

    remote = ProcessBuilder.remote("allclear-remote")
    remote.state("I", tau("wantR", to="I.r"), tau("wantW", to="I.w"))
    remote.state("I.r", out("reqR", to="I.grR"))
    remote.state("I.grR", inp("grR", to="S"))
    remote.state("I.w", out("reqW", to="I.grW"))
    remote.state("I.grW", inp("grW", to="M"))
    remote.state("S", inp("inv", to="S.ia"))
    remote.state("S.ia", out("IA", to="I"))
    remote.state("M", tau("release", to="M.rel"), tau("blurt", to="M.bc"))
    remote.state("M.rel", out("rel", to="I"))
    remote.state("M.bc", out("ALLCLEAR", to="I"))
    return protocol("allclear", home, remote)


ALLCLEAR_SPEC = CoherenceSpec(name="allclear",
                              exclusive=frozenset({"M", "M.rel", "M.bc"}),
                              shared=frozenset({"S", "S.ia"}))


def incoherent_invalidate():
    """Invalidate with the writer-grant precondition dropped.

    The home ``done`` tau no longer requires the sharer set to be empty,
    so a writer can be granted over a live reader — a genuine coherence
    bug two concrete nodes already exhibit.
    """
    from repro.protocols import invalidate_protocol

    p = invalidate_protocol()
    wchk = p.home.state("W.chk")
    mutated = dataclasses.replace(wchk, guards=tuple(
        dataclasses.replace(g, cond=None)
        if isinstance(g, Tau) and g.label == "done" else g
        for g in wchk.guards))
    states = dict(p.home.states)
    states["W.chk"] = mutated
    return dataclasses.replace(
        p, home=dataclasses.replace(p.home, states=states))


# ---------------------------------------------------------------------------
# the spec registry (satellite: single source of truth)
# ---------------------------------------------------------------------------


class TestSpecRegistry:
    def test_all_library_protocols_have_specs(self):
        assert set(COHERENCE_SPECS) == {"invalidate", "mesi",
                                        "migratory", "msi"}

    def test_lookup_helper_matches_registry(self):
        for name, spec in COHERENCE_SPECS.items():
            assert coherence_spec_for(name) is spec

    def test_unknown_name_raises_with_catalogue(self):
        try:
            coherence_spec_for("nonesuch")
        except KeyError as exc:
            assert "migratory" in str(exc)
        else:
            raise AssertionError("expected KeyError")


# ---------------------------------------------------------------------------
# discharges
# ---------------------------------------------------------------------------


class TestLibraryDischarge:
    def test_all_four_protocols_discharge(self, migratory, invalidate, msi):
        for proto in (migratory, invalidate, msi, mesi_protocol()):
            verdict = check_coherence(proto)
            assert verdict.discharged, [d.render()
                                        for d in verdict.obligations]
            assert verdict.abstract_states > 0
            assert verdict.validated == verdict.candidates
            assert verdict.witness is None

    def test_verdict_serializes(self, migratory):
        verdict = check_coherence(migratory)
        doc = json.loads(json.dumps(verdict.as_dict()))
        assert doc["status"] == "discharged"
        assert doc["discharged"] is True
        assert doc["witness_steps"] is None
        codes = [d["code"] for d in doc["obligations"]]
        assert "P4601" in codes
        assert not {"P4602", "P4603", "P4605"} & set(codes)

    def test_properties_cover_both_claims(self, msi):
        verdict = check_coherence(msi)
        assert any("single-writer" in p for p in verdict.properties)
        assert any("reader" in p for p in verdict.properties)

    def test_deterministic_across_runs(self, invalidate):
        first = check_coherence(invalidate)
        second = check_coherence(invalidate)
        assert first.status == second.status
        assert first.abstract_states == second.abstract_states
        assert ([d.code for d in first.obligations]
                == [d.code for d in second.obligations])
        assert ([lemma.name for lemma in first.lemmas]
                == [lemma.name for lemma in second.lemmas])


# ---------------------------------------------------------------------------
# the CEGAR loop
# ---------------------------------------------------------------------------


class TestLemmaLoop:
    def test_allclear_needs_a_promoted_lemma(self):
        verdict = check_coherence(allclear_protocol(), ALLCLEAR_SPEC)
        assert verdict.discharged, verdict.reason
        assert verdict.iterations >= 2
        assert [lemma.name for lemma in verdict.lemmas] == [
            "reqW@F:wait@W.wait:t0"]
        assert verdict.lemmas[0].kind == "wait"

    def test_allclear_really_is_coherent(self):
        # the oracle backing the test above: no concrete violation exists
        proto = allclear_protocol()
        for n in (2, 3):
            result = explore(
                RendezvousSystem(proto, n),
                name=f"allclear-oracle-{n}",
                invariants=list(coherence_invariants(ALLCLEAR_SPEC)),
                stop_on_violation=False, allow_deadlock=True,
                max_states=200_000)
            assert result.completed
            assert not result.violations

    def test_candidates_are_sorted_and_deduplicated(self, msi):
        graph = derive_flows(msi)
        candidates = derive_candidate_lemmas(msi, graph)
        names = [c.name for c in candidates]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_lemma_inventory_diagnostic(self):
        verdict = check_coherence(allclear_protocol(), ALLCLEAR_SPEC)
        inventory = [d for d in verdict.obligations if d.code == "P4604"]
        assert len(inventory) == 1
        assert "reqW@F:wait@W.wait:t0" in inventory[0].message


# ---------------------------------------------------------------------------
# refutations
# ---------------------------------------------------------------------------


class TestRefutation:
    def test_incoherent_mutant_is_refuted_with_witness(self):
        verdict = check_coherence(incoherent_invalidate(),
                                  COHERENCE_SPECS["invalidate"])
        assert verdict.status == "refuted"
        assert not verdict.discharged
        assert verdict.witness is not None
        assert any(d.code == "P4602" for d in verdict.obligations)

    def test_witness_replays_and_renders_as_msc(self):
        verdict = check_coherence(incoherent_invalidate(),
                                  COHERENCE_SPECS["invalidate"])
        chart = render_counterexample_msc(verdict.witness, 2)
        assert "grW" in chart
        assert "reqW" in chart
        assert chart.splitlines()[0].split() == ["time", "h", "r0", "r1"]


# ---------------------------------------------------------------------------
# soundness guards: constructs the abstraction must refuse
# ---------------------------------------------------------------------------


def _pred_sender_protocol():
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("a", sender=PredSender(lambda env, sender: True,
                                             name="anyone"),
                      to="h1"))
    h.state("h1", inp("b", sender=AnySender(), bind_sender="j", to="h2"))
    h.state("h2", out("c", target=VarTarget("j"),
                      update=lambda env: env.set("j", None), to="h0"))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("go", to="r1"))
    r.state("r1", out("a", to="r2"))
    r.state("r2", out("b", to="r3"))
    r.state("r3", inp("c", to="r0"))
    return protocol("predsender", h, r)


def _const_target_protocol():
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("a", sender=AnySender(), bind_sender="j", to="h1"))
    h.state("h1", out("c", target=ConstTarget(0),
                      update=lambda env: env.set("j", None), to="h0"))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("go", to="r1"))
    r.state("r1", out("a", to="r2"))
    r.state("r2", inp("c", to="r0"))
    return protocol("consttarget", h, r)


GUARD_SPEC = CoherenceSpec(name="guard", exclusive=frozenset({"r2"}),
                           shared=frozenset())


class TestSoundnessGuards:
    def test_pred_sender_is_inconclusive_p4605(self):
        verdict = check_coherence(_pred_sender_protocol(), GUARD_SPEC)
        assert verdict.status == "inconclusive"
        guards = [d for d in verdict.obligations if d.code == "P4605"]
        assert guards and "predicate" in guards[0].message

    def test_const_target_is_inconclusive_p4605(self):
        verdict = check_coherence(_const_target_protocol(), GUARD_SPEC)
        assert verdict.status == "inconclusive"
        guards = [d for d in verdict.obligations if d.code == "P4605"]
        assert guards and "remote-symmetry" in guards[0].message

    def test_guarded_protocols_are_never_discharged(self):
        for proto in (_pred_sender_protocol(), _const_target_protocol()):
            assert not check_coherence(proto, GUARD_SPEC).discharged


# ---------------------------------------------------------------------------
# the abstract system itself
# ---------------------------------------------------------------------------


class TestAbstractSystem:
    def test_other_send_table_is_sorted(self, migratory):
        table, issues = _other_send_table(
            migratory, {migratory.remote.initial_env})
        assert not issues
        assert list(table) == sorted(table)

    def test_abstract_reaches_other_engagement(self):
        # home variables must actually take the OTHER value somewhere,
        # or the abstraction would not model interference at all
        proto = allclear_protocol()
        table, _ = _other_send_table(proto, {proto.remote.initial_env})
        system = AbstractCoherenceSystem(proto, other_sends=table)
        seen = {system.initial_state()}
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            for _, post in system.successors(state):
                if post not in seen:
                    seen.add(post)
                    frontier.append(post)
            assert len(seen) < 50_000
        engaged = [s for s in seen
                   if any(v == OTHER
                          or (isinstance(v, frozenset) and OTHER in v)
                          for v in s.home.env.values())]
        assert engaged, "Other never engaged the home"

    def test_lemma_gates_other_sends(self):
        proto = allclear_protocol()
        table, _ = _other_send_table(proto, {proto.remote.initial_env})
        blocking = CoherenceLemma(
            name="block-all", kind="wait", flow="x", var="t0",
            home_states=frozenset({"W.wait"}), allowed_msgs=frozenset(),
            detail="test", pred=lambda rv: True)
        free = explore(AbstractCoherenceSystem(proto, other_sends=table),
                       name="free", max_states=50_000,
                       stop_on_violation=False, allow_deadlock=True)
        gated = explore(AbstractCoherenceSystem(proto, other_sends=table,
                                                lemmas=(blocking,)),
                        name="gated", max_states=50_000,
                        stop_on_violation=False, allow_deadlock=True)
        assert gated.n_states < free.n_states


# ---------------------------------------------------------------------------
# manager integration
# ---------------------------------------------------------------------------


class TestManagerIntegration:
    def test_lint_reports_discharge_codes(self, migratory):
        report = analyze_protocol(migratory)
        assert "P4601" in report.codes()

    def test_pass_is_silent_without_a_spec(self):
        proto = _const_target_protocol()  # no registered spec
        graph = derive_flows(proto)
        assert list(coherencecheck_pass(proto, graph=graph)) == []

    def test_pass_uses_shared_graph(self, migratory):
        graph = derive_flows(migratory)
        diags = list(coherencecheck_pass(migratory, graph=graph))
        assert any(d.code == "P4601" for d in diags)

    def test_cache_runs_coherence_once(self, msi, monkeypatch):
        from repro.analysis import coherencecheck as cc

        calls = {"n": 0}
        original = cc.check_coherence

        def counting(protocol, spec=None, **kwargs):
            calls["n"] += 1
            return original(protocol, spec, **kwargs)

        monkeypatch.setattr(cc, "check_coherence", counting)
        report = analyze_protocol(msi)
        assert "P4601" in report.codes()
        assert calls["n"] == 1
