"""Unit tests for the asynchronous semantics (Tables 1 and 2 row by row)."""

import pytest

from repro import RefinementConfig, refine
from repro.errors import SemanticsError
from repro.semantics.asynchronous import (
    AsyncSystem,
    DeliverToHome,
    DeliverToRemote,
    HomeStep,
    RemoteC3,
    RemoteSend,
    RemoteTau,
    TRANS,
    IDLE,
)
from repro.semantics.network import ACK, REPL, REQ, Channels


def take(system, state, predicate, description=""):
    """Apply the unique enabled step matching ``predicate``."""
    matching = [s for s in system.steps(state) if predicate(s)]
    assert len(matching) == 1, (
        f"expected exactly one step {description!r}, got "
        f"{[s.action.describe() for s in matching]} out of "
        f"{[s.action.describe() for s in system.steps(state)]}")
    return matching[0]


def is_action(cls, **attrs):
    def predicate(step):
        if not isinstance(step.action, cls):
            return False
        return all(getattr(step.action, k) == v for k, v in attrs.items())
    return predicate


@pytest.fixture
def plain2(migratory_refined_plain):
    """Un-fused migratory with 2 remotes: pure Tables 1-2 behaviour."""
    return AsyncSystem(migratory_refined_plain, 2)


@pytest.fixture
def fused2(migratory_refined):
    return AsyncSystem(migratory_refined, 2)


class TestInitialState:
    def test_layout(self, plain2):
        init = plain2.initial_state()
        assert init.home.mode == IDLE and init.home.buffer == ()
        assert all(r.mode == IDLE and r.buf is None for r in init.remotes)
        assert init.channels.total_in_flight == 0

    def test_requires_positive_remotes(self, migratory_refined):
        with pytest.raises(SemanticsError):
            AsyncSystem(migratory_refined, 0)


class TestRemoteTable1:
    def test_c1_send_enters_transient(self, plain2):
        init = plain2.initial_state()
        step = take(plain2, init, is_action(RemoteSend, remote=0), "r0 send")
        state = step.state
        assert state.remotes[0].mode == TRANS
        head = state.channels.head_to_home(0)
        assert head.kind == REQ and head.msg == "req"
        assert step.sends and step.sends[0].kind == REQ

    def test_t2_nack_triggers_retransmission(self, plain2):
        # fill the home buffer is hard with k=2; instead inject a NACK
        init = plain2.initial_state()
        state = take(plain2, init, is_action(RemoteSend, remote=0)).state
        # drop the request and fake a nack from home
        _req, channels = state.channels.pop(Channels.to_home(0))
        from repro.semantics.network import Msg, NACK as NK
        channels = channels.send_to_remote(0, Msg(kind=NK))
        state = state.with_channels(channels)
        step = take(plain2, state, is_action(DeliverToRemote, remote=0))
        after = step.state
        assert after.remotes[0].mode == TRANS  # re-entered transient
        assert after.channels.head_to_home(0).kind == REQ  # retransmitted
        assert step.sends[0].kind == REQ

    def test_t3_request_from_home_dropped_in_transient(self, plain2):
        init = plain2.initial_state()
        state = take(plain2, init, is_action(RemoteSend, remote=0)).state
        from repro.semantics.network import Msg
        channels = state.channels.send_to_remote(0, Msg(kind=REQ, msg="inv"))
        state = state.with_channels(channels)
        step = take(plain2, state, is_action(DeliverToRemote, remote=0))
        after = step.state
        assert after.remotes[0].buf is None  # dropped, not buffered
        assert after.remotes[0].mode == TRANS  # still waiting

    def test_t1_ack_completes_rendezvous(self, plain2):
        init = plain2.initial_state()
        state = take(plain2, init, is_action(RemoteSend, remote=0)).state
        state = take(plain2, state, is_action(DeliverToHome, remote=0)).state
        # home buffers the req, C1 consumes it and acks
        step = take(plain2, state, is_action(HomeStep, kind="C1"))
        state = step.state
        assert state.channels.head_to_remote(0).kind == ACK
        step = take(plain2, state, is_action(DeliverToRemote, remote=0))
        assert step.completes and step.completes[0].msg == "req"
        assert step.state.remotes[0].state == "I.gr"
        assert step.state.remotes[0].mode == IDLE

    def test_c3_satisfying_request_acked(self, plain2):
        state = self._drive_r0_to_V(plain2)
        # r1 requests: home consumes the req in E and moves to I1, from
        # which C2 sends inv to the owner r0
        state = take(plain2, state,
                     is_action(RemoteSend, remote=1), "r1 req").state
        state = take(plain2, state, is_action(DeliverToHome, remote=1)).state
        state = take(plain2, state, is_action(HomeStep, kind="C1")).state
        assert state.home.state == "I1"
        step = take(plain2, state, is_action(HomeStep, kind="C2"), "send inv")
        state = step.state
        assert state.home.mode == TRANS and state.home.awaiting == 0
        state = take(plain2, state, is_action(DeliverToRemote, remote=0)).state
        assert state.remotes[0].buf is not None  # inv buffered at r0
        step = take(plain2, state, is_action(RemoteC3, remote=0))
        after = step.state
        assert after.remotes[0].state == "V.id"
        assert after.channels.head_to_home(0).kind == ACK
        assert step.completes and step.completes[0].msg == "inv"

    def _drive_r0_to_V(self, system):
        """r0 requests, home grants, r0 lands in V (plain refinement)."""
        state = system.initial_state()
        state = take(system, state, is_action(RemoteSend, remote=0)).state
        state = take(system, state, is_action(DeliverToHome, remote=0)).state
        state = take(system, state, is_action(HomeStep, kind="C1")).state
        state = take(system, state, is_action(DeliverToRemote, remote=0)).state
        assert state.remotes[0].state == "I.gr"
        return self._deliver_gr_to(system, state, 0)

    @staticmethod
    def _deliver_gr_to(system, state, i):
        """Complete the home-active gr rendezvous with remote i (plain)."""
        step = take(system, state, is_action(HomeStep, kind="C2"),
                    f"send gr to r{i}")
        state = step.state
        assert state.home.awaiting == i
        state = take(system, state, is_action(DeliverToRemote, remote=i)).state
        state = take(system, state, is_action(RemoteC3, remote=i)).state
        step = take(system, state, is_action(DeliverToHome, remote=i))
        assert any(c.msg == "gr" for c in step.completes)
        state = step.state
        assert state.remotes[i].state == "V"
        assert state.home.state == "E"
        return state


class TestHomeTable2:
    def test_requests_buffered_until_capacity(self, plain2):
        system = AsyncSystem(refine(
            plain2.protocol, RefinementConfig(use_reqreply=False,
                                              home_buffer_capacity=3)), 2)
        state = system.initial_state()
        for i in (0, 1):
            state = take(system, state, is_action(RemoteSend, remote=i)).state
        for i in (0, 1):
            state = take(system, state,
                         is_action(DeliverToHome, remote=i)).state
        assert len(state.home.buffer) == 2

    def test_progress_buffer_refuses_non_satisfying(self, migratory):
        """In state E with k=2 and one slot used, a second req (which
        cannot complete a rendezvous... actually req satisfies E).  Use I1:
        only LR/ID from the owner satisfy; a req must be nacked when only
        the progress slot remains."""
        refined = refine(migratory, RefinementConfig(use_reqreply=False))
        system = AsyncSystem(refined, 3)
        t = TestRemoteTable1()
        state = t._drive_r0_to_V(system)
        # r1 requests: home E -> I1 (buffered then consumed)
        state = take(system, state, is_action(RemoteSend, remote=1)).state
        state = take(system, state, is_action(DeliverToHome, remote=1)).state
        state = take(system, state, is_action(HomeStep, kind="C1")).state
        assert state.home.state == "I1"
        # r2's req arrives twice: first fills the free slot... k=2, buffer
        # empty, free=2>1 -> buffered; then home goes transient with inv.
        state = take(system, state, is_action(RemoteSend, remote=2)).state
        state = take(system, state, is_action(DeliverToHome, remote=2)).state
        assert len(state.home.buffer) == 1
        step = take(system, state, is_action(HomeStep, kind="C2"))
        state = step.state  # transient awaiting r0's inv ack
        assert state.home.mode == TRANS
        # r2 was nacked?  no - r2's request sits in buffer.  Now r0's
        # evict... instead check: a fresh req from r2 is impossible (it is
        # transient).  The invariant we check: free slots == 1 == reserved
        # ack buffer, so any further request would be nacked (T6).
        assert system._free_slots(state.home) == 1

    def test_t3_implicit_nack(self, plain2):
        t = TestRemoteTable1()
        state = t._drive_r0_to_V(plain2)
        # r1 requests; home goes to I1 and sends inv to r0
        state = take(plain2, state, is_action(RemoteSend, remote=1)).state
        state = take(plain2, state, is_action(DeliverToHome, remote=1)).state
        state = take(plain2, state, is_action(HomeStep, kind="C1")).state
        state = take(plain2, state, is_action(HomeStep, kind="C2")).state
        assert state.home.awaiting == 0
        # meanwhile r0 evicts and sends LR (a request from the awaited
        # remote): the home treats it as nack + request (row T3)
        state = take(plain2, state, is_action(RemoteTau, remote=0,
                                              label="evict")).state
        state = take(plain2, state, is_action(RemoteSend, remote=0)).state
        assert state.remotes[0].mode == TRANS  # waiting for LR ack
        step = take(plain2, state, is_action(DeliverToHome, remote=0))
        after = step.state
        assert after.home.mode == IDLE  # implicit nack: back to comm state
        assert any(e.sender == 0 and e.msg == "LR" for e in after.home.buffer)

    def test_ack_from_unexpected_remote_raises(self, plain2):
        from repro.semantics.network import Msg
        init = plain2.initial_state()
        state = init.with_channels(
            init.channels.send_to_home(0, Msg(kind=ACK)))
        with pytest.raises(SemanticsError, match="not awaiting"):
            plain2.steps(state)


class TestReqReplyFusion:
    def test_fused_request_gets_no_ack(self, fused2):
        state = fused2.initial_state()
        state = take(fused2, state, is_action(RemoteSend, remote=0)).state
        state = take(fused2, state, is_action(DeliverToHome, remote=0)).state
        step = take(fused2, state, is_action(HomeStep, kind="C1"))
        assert step.sends == ()  # consumption without ack
        assert step.completes == ()  # reported at the reply instead

    def test_reply_completes_both_rendezvous(self, fused2):
        state = fused2.initial_state()
        state = take(fused2, state, is_action(RemoteSend, remote=0)).state
        state = take(fused2, state, is_action(DeliverToHome, remote=0)).state
        state = take(fused2, state, is_action(HomeStep, kind="C1")).state
        step = take(fused2, state, is_action(HomeStep, kind="REPLY"))
        assert step.sends[0].kind == REPL and step.sends[0].msg == "gr"
        state = step.state
        assert state.home.state == "E" and state.home.mode == IDLE
        step = take(fused2, state, is_action(DeliverToRemote, remote=0))
        assert {c.msg for c in step.completes} == {"req", "gr"}
        assert step.state.remotes[0].state == "V"

    def test_transaction_takes_two_messages(self, fused2):
        """Section 3.3's headline: req+gr costs 2 messages, not 4."""
        state = fused2.initial_state()
        messages = 0
        for _ in range(6):
            steps = [s for s in fused2.steps(state)
                     if not isinstance(s.action, (RemoteSend, RemoteTau))
                     or s.action.remote == 0]
            # drive only remote 0 and the home
            step = steps[0]
            messages += len(step.sends)
            state = step.state
            if state.remotes[0].state == "V":
                break
        assert state.remotes[0].state == "V"
        assert messages == 2

    def test_fused_inv_id_roundtrip(self, fused2):
        # drive r0 to V (fused: req, consume, reply, deliver)
        state = fused2.initial_state()
        state = take(fused2, state, is_action(RemoteSend, remote=0)).state
        state = take(fused2, state, is_action(DeliverToHome, remote=0)).state
        state = take(fused2, state, is_action(HomeStep, kind="C1")).state
        state = take(fused2, state, is_action(HomeStep, kind="REPLY")).state
        state = take(fused2, state, is_action(DeliverToRemote, remote=0)).state
        # r1 wants the line: home revokes via fused inv/ID
        state = take(fused2, state, is_action(RemoteSend, remote=1)).state
        state = take(fused2, state, is_action(DeliverToHome, remote=1)).state
        state = take(fused2, state, is_action(HomeStep, kind="C1")).state
        assert state.home.state == "I1"
        state = take(fused2, state, is_action(HomeStep, kind="C2")).state
        assert state.home.mode == TRANS and state.home.awaiting == 0
        state = take(fused2, state, is_action(DeliverToRemote, remote=0)).state
        step = take(fused2, state, is_action(RemoteC3, remote=0))
        assert step.sends[0].kind == REPL and step.sends[0].msg == "ID"
        state = step.state
        assert state.remotes[0].state == "I"
        step = take(fused2, state, is_action(DeliverToHome, remote=0))
        assert {c.msg for c in step.completes} == {"inv", "ID"}
        assert step.state.home.state == "I3"


class TestDeterminismAndHashing:
    def test_steps_are_reproducible(self, fused2):
        state = fused2.initial_state()
        a = [s.action for s in fused2.steps(state)]
        b = [s.action for s in fused2.steps(state)]
        assert a == b

    def test_apply_matches_steps(self, fused2):
        state = fused2.initial_state()
        for step in fused2.steps(state):
            assert fused2.apply(state, step.action) == step.state

    def test_apply_unknown_action_raises(self, fused2):
        with pytest.raises(SemanticsError):
            fused2.apply(fused2.initial_state(), DeliverToHome(remote=0))
