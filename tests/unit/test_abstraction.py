"""Unit tests for the section 4 abstraction function (repro.refine.abstraction)."""

import pytest

from repro import refine
from repro.protocols.handwritten import handwritten_migratory
from repro.refine.abstraction import AbstractionUndefined, abstract_state
from repro.semantics.asynchronous import (
    AsyncSystem,
    DeliverToHome,
    HomeStep,
    RemoteSend,
)
from repro.semantics.rendezvous import RendezvousSystem


def find_step(system, state, predicate):
    matches = [s for s in system.steps(state) if predicate(s)]
    assert matches, [s.action.describe() for s in system.steps(state)]
    return matches[0]


class TestInitialState:
    def test_initial_abs_equals_rendezvous_initial(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        rv = RendezvousSystem(migratory_refined.protocol, 2)
        assert abstract_state(system, system.initial_state()) == \
            rv.initial_state()


class TestRule1RequestsDiscarded:
    def test_inflight_request_rewinds_sender(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        init = system.initial_state()
        sent = find_step(system, init,
                         lambda s: isinstance(s.action, RemoteSend)
                         and s.action.remote == 0).state
        # r0 is transient with its req in flight; abs discards both
        assert abstract_state(system, sent) == abstract_state(system, init)

    def test_buffered_request_rewinds_sender(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        init = system.initial_state()
        state = find_step(system, init,
                          lambda s: isinstance(s.action, RemoteSend)
                          and s.action.remote == 0).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        assert state.home.buffer  # now buffered rather than in flight
        assert abstract_state(system, state) == abstract_state(system, init)


class TestRule2AcksFastForward:
    def test_ack_in_flight_advances_target(self, migratory_refined_plain):
        system = AsyncSystem(migratory_refined_plain, 1)
        state = system.initial_state()
        state = find_step(system, state,
                          lambda s: isinstance(s.action, RemoteSend)).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        consumed = find_step(
            system, state,
            lambda s: isinstance(s.action, HomeStep)
            and s.action.kind == "C1").state
        # ACK to r0 in flight: abs must show the req rendezvous complete
        abs_state = abstract_state(system, consumed)
        assert abs_state.remotes[0].state == "I.gr"
        assert abs_state.home.state == "F1"

    def test_half_forward_for_fused_request(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        state = find_step(system, state,
                          lambda s: isinstance(s.action, RemoteSend)).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        consumed = find_step(
            system, state,
            lambda s: isinstance(s.action, HomeStep)
            and s.action.kind == "C1").state
        # no ack exists (fused); the requester is half-forwarded to the
        # reply-waiting state
        abs_state = abstract_state(system, consumed)
        assert abs_state.remotes[0].state == "I.gr"
        assert abs_state.home.state == "F1"

    def test_reply_in_flight_fast_forwards_through_both(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        for predicate in (
            lambda s: isinstance(s.action, RemoteSend),
            lambda s: isinstance(s.action, DeliverToHome),
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "REPLY",
        ):
            state = find_step(system, state, predicate).state
        abs_state = abstract_state(system, state)
        assert abs_state.remotes[0].state == "V"
        assert abs_state.home.state == "E"


def drive_to_note_in_flight(system):
    """Drive r0 into V, then evict: the LR is sent fire-and-forget."""
    state = system.initial_state()
    for predicate in (
        lambda s: isinstance(s.action, RemoteSend),
        lambda s: isinstance(s.action, DeliverToHome),
        lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
        lambda s: isinstance(s.action, HomeStep) and s.action.kind == "REPLY",
        lambda s: s.action.describe().endswith("deliver h→r0"),
        lambda s: s.action.describe() == "r0.τ:evict",
        lambda s: isinstance(s.action, RemoteSend),
    ):
        state = find_step(system, state, predicate).state
    return state


class TestFireAndForgetUndefined:
    def test_note_in_flight_raises(self):
        system = AsyncSystem(handwritten_migratory(), 1)
        state = drive_to_note_in_flight(system)
        assert any(m.kind == "NOTE" for _i, _d, m in state.channels.in_flight())
        with pytest.raises(AbstractionUndefined):
            abstract_state(system, state)

    def test_note_in_flight_reason_is_the_carve_out(self):
        """The certificate checker dispatches on the reason tag: the
        fire-and-forget undefinedness is documented, not a bug."""
        system = AsyncSystem(handwritten_migratory(), 1)
        state = drive_to_note_in_flight(system)
        with pytest.raises(AbstractionUndefined) as excinfo:
            abstract_state(system, state)
        assert excinfo.value.reason == \
            AbstractionUndefined.REASON_NOTE_IN_FLIGHT
        assert excinfo.value.is_note_carveout

    def test_note_buffered_reason_is_the_carve_out(self):
        system = AsyncSystem(handwritten_migratory(), 1)
        state = drive_to_note_in_flight(system)
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        assert any(e.note for e in state.home.buffer)
        with pytest.raises(AbstractionUndefined) as excinfo:
            abstract_state(system, state)
        assert excinfo.value.reason == \
            AbstractionUndefined.REASON_NOTE_BUFFERED
        assert excinfo.value.is_note_carveout

    def test_bug_reasons_are_not_the_carve_out(self):
        for reason in (AbstractionUndefined.REASON_NO_WITNESS,
                       AbstractionUndefined.REASON_NO_REPLY_INPUT):
            assert not AbstractionUndefined("x", reason=reason).is_note_carveout

    def test_default_reason_is_no_witness(self):
        assert AbstractionUndefined("x").reason == \
            AbstractionUndefined.REASON_NO_WITNESS


class TestHalfForwardedEnv:
    def test_half_forward_applies_the_request_update(self, migratory_refined):
        """The half-forwarded requester must carry the *post-request* env
        (the request's update committed with the rendezvous), or fused
        states with env updates would abstract to unreachable contexts."""
        from repro.refine.transitions import REMOTE, build_step_table
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        for predicate in (
            lambda s: isinstance(s.action, RemoteSend),
            lambda s: isinstance(s.action, DeliverToHome),
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
        ):
            state = find_step(system, state, predicate).state
        # concrete r0 is still transient at I (half-forwarded posture)
        assert state.remotes[0].state == "I"
        spec = build_step_table(migratory_refined).spec(REMOTE, "I", 0)
        abs_state = abstract_state(system, state)
        assert abs_state.remotes[0].state == spec.reply_to

    def test_no_witness_is_a_semantics_bug_not_a_carve_out(
            self, migratory_refined):
        """Erase the fused pair from the plan: the consumed-but-unreplied
        requester then has no abstract preimage, and the reason tag must
        say 'bug', not 'carve-out'."""
        from repro.refine.plan import RefinedProtocol, RefinementPlan
        stripped = RefinedProtocol(
            protocol=migratory_refined.protocol,
            plan=RefinementPlan(config=migratory_refined.plan.config,
                                fused=()))
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        for predicate in (
            lambda s: isinstance(s.action, RemoteSend),
            lambda s: isinstance(s.action, DeliverToHome),
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
        ):
            state = find_step(system, state, predicate).state
        with pytest.raises(AbstractionUndefined) as excinfo:
            abstract_state(AsyncSystem(stripped, 1), state)
        assert excinfo.value.reason == \
            AbstractionUndefined.REASON_NO_WITNESS
        assert not excinfo.value.is_note_carveout


class TestAbstractionTotality:
    @pytest.mark.parametrize("n", [1, 2])
    def test_defined_on_every_reachable_state(self, migratory_refined, n):
        from repro.check.explorer import explore
        system = AsyncSystem(migratory_refined, n)
        result = explore(system, keep_graph=True, allow_deadlock=True)
        for state in result.graph:
            abstract_state(system, state)  # must not raise
