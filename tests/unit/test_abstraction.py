"""Unit tests for the section 4 abstraction function (repro.refine.abstraction)."""

import pytest

from repro import refine
from repro.protocols.handwritten import handwritten_migratory
from repro.refine.abstraction import AbstractionUndefined, abstract_state
from repro.semantics.asynchronous import (
    AsyncSystem,
    DeliverToHome,
    HomeStep,
    RemoteSend,
)
from repro.semantics.rendezvous import RendezvousSystem


def find_step(system, state, predicate):
    matches = [s for s in system.steps(state) if predicate(s)]
    assert matches, [s.action.describe() for s in system.steps(state)]
    return matches[0]


class TestInitialState:
    def test_initial_abs_equals_rendezvous_initial(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        rv = RendezvousSystem(migratory_refined.protocol, 2)
        assert abstract_state(system, system.initial_state()) == \
            rv.initial_state()


class TestRule1RequestsDiscarded:
    def test_inflight_request_rewinds_sender(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        init = system.initial_state()
        sent = find_step(system, init,
                         lambda s: isinstance(s.action, RemoteSend)
                         and s.action.remote == 0).state
        # r0 is transient with its req in flight; abs discards both
        assert abstract_state(system, sent) == abstract_state(system, init)

    def test_buffered_request_rewinds_sender(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 2)
        init = system.initial_state()
        state = find_step(system, init,
                          lambda s: isinstance(s.action, RemoteSend)
                          and s.action.remote == 0).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        assert state.home.buffer  # now buffered rather than in flight
        assert abstract_state(system, state) == abstract_state(system, init)


class TestRule2AcksFastForward:
    def test_ack_in_flight_advances_target(self, migratory_refined_plain):
        system = AsyncSystem(migratory_refined_plain, 1)
        state = system.initial_state()
        state = find_step(system, state,
                          lambda s: isinstance(s.action, RemoteSend)).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        consumed = find_step(
            system, state,
            lambda s: isinstance(s.action, HomeStep)
            and s.action.kind == "C1").state
        # ACK to r0 in flight: abs must show the req rendezvous complete
        abs_state = abstract_state(system, consumed)
        assert abs_state.remotes[0].state == "I.gr"
        assert abs_state.home.state == "F1"

    def test_half_forward_for_fused_request(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        state = find_step(system, state,
                          lambda s: isinstance(s.action, RemoteSend)).state
        state = find_step(system, state,
                          lambda s: isinstance(s.action, DeliverToHome)).state
        consumed = find_step(
            system, state,
            lambda s: isinstance(s.action, HomeStep)
            and s.action.kind == "C1").state
        # no ack exists (fused); the requester is half-forwarded to the
        # reply-waiting state
        abs_state = abstract_state(system, consumed)
        assert abs_state.remotes[0].state == "I.gr"
        assert abs_state.home.state == "F1"

    def test_reply_in_flight_fast_forwards_through_both(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 1)
        state = system.initial_state()
        for predicate in (
            lambda s: isinstance(s.action, RemoteSend),
            lambda s: isinstance(s.action, DeliverToHome),
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "REPLY",
        ):
            state = find_step(system, state, predicate).state
        abs_state = abstract_state(system, state)
        assert abs_state.remotes[0].state == "V"
        assert abs_state.home.state == "E"


class TestFireAndForgetUndefined:
    def test_note_in_flight_raises(self):
        refined = handwritten_migratory()
        system = AsyncSystem(refined, 1)
        state = system.initial_state()
        # drive r0 into V, then evict: the LR is sent fire-and-forget
        for predicate in (
            lambda s: isinstance(s.action, RemoteSend),
            lambda s: isinstance(s.action, DeliverToHome),
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "C1",
            lambda s: isinstance(s.action, HomeStep) and s.action.kind == "REPLY",
            lambda s: s.action.describe().endswith("deliver h→r0"),
            lambda s: s.action.describe() == "r0.τ:evict",
            lambda s: isinstance(s.action, RemoteSend),
        ):
            state = find_step(system, state, predicate).state
        assert any(m.kind == "NOTE" for _i, _d, m in state.channels.in_flight())
        with pytest.raises(AbstractionUndefined):
            abstract_state(system, state)


class TestAbstractionTotality:
    @pytest.mark.parametrize("n", [1, 2])
    def test_defined_on_every_reachable_state(self, migratory_refined, n):
        from repro.check.explorer import explore
        system = AsyncSystem(migratory_refined, n)
        result = explore(system, keep_graph=True, allow_deadlock=True)
        for state in result.graph:
            abstract_state(system, state)  # must not raise
