"""Unit tests for result rendering (repro.check.stats)."""

from repro.check.stats import Counterexample, ExplorationResult


def result(**overrides):
    base = dict(system_name="sys", n_states=10, n_transitions=20,
                seconds=1.25, completed=True)
    base.update(overrides)
    return ExplorationResult(**base)


class TestCell:
    def test_completed_cell(self):
        assert result().cell() == "10/1.25"

    def test_unfinished_cell(self):
        assert result(completed=False, stop_reason="budget").cell() == \
            "Unfinished"


class TestOkFlag:
    def test_clean(self):
        assert result().ok

    def test_deadlock_not_ok(self):
        trace = Counterexample("deadlock-freedom", states=[0], steps=[])
        assert not result(deadlocks=[trace]).ok

    def test_violation_not_ok(self):
        trace = Counterexample("inv", states=[0], steps=[])
        assert not result(violations=[trace]).ok

    def test_incomplete_not_ok(self):
        assert not result(completed=False, stop_reason="x").ok


class TestDeadlockCount:
    """Count-only deadlock reporting (parallel workers ship no traces)."""

    def test_count_without_witnesses_is_not_ok(self):
        assert not result(deadlock_count=3).ok

    def test_count_synced_from_witness_list(self):
        trace = Counterexample("deadlock-freedom", states=[0], steps=[])
        assert result(deadlocks=[trace]).deadlock_count == 1

    def test_explicit_count_wins_over_shorter_list(self):
        trace = Counterexample("deadlock-freedom", states=[0], steps=[])
        assert result(deadlocks=[trace], deadlock_count=5).deadlock_count == 5

    def test_describe_uses_the_count(self):
        assert "3 deadlock state(s)" in result(deadlock_count=3).describe()


class TestDescribe:
    def test_mentions_counts_and_time(self):
        text = result().describe()
        assert "10 states" in text and "20 transitions" in text
        assert "1.25s" in text and "complete" in text

    def test_mentions_deadlocks_and_violations(self):
        trace_d = Counterexample("deadlock-freedom", states=[0], steps=[])
        trace_v = Counterexample("my-prop", states=[0], steps=[])
        text = result(deadlocks=[trace_d], violations=[trace_v]).describe()
        assert "1 deadlock state(s)" in text
        assert "my-prop" in text

    def test_unfinished_mentions_reason(self):
        text = result(completed=False,
                      stop_reason="state budget 5 exceeded").describe()
        assert "UNFINISHED" in text and "state budget 5" in text


class TestCounterexampleTrace:
    def test_step_count_rendering(self):
        trace = Counterexample("p", states=["a", "b", "c"],
                               steps=["x", "y"])
        text = trace.describe()
        assert "(2 steps)" in text
        assert text.count("--[") == 2
