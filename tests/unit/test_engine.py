"""Unit tests for the refinement engine and plan (repro.refine)."""

import pytest

from repro import RefinementConfig, refine
from repro.csp.builder import ProcessBuilder, inp, out, protocol
from repro.csp.ast import AnySender
from repro.errors import RefinementError, ValidationError
from repro.refine.plan import (
    HOME_SIDE,
    REMOTE,
    FusedPair,
    RefinementPlan,
)


class TestRefinementConfig:
    def test_defaults_match_paper(self):
        config = RefinementConfig()
        assert config.home_buffer_capacity == 2
        assert config.use_reqreply
        assert config.reserve_progress_buffer
        assert config.reserve_ack_buffer
        assert config.fire_and_forget == frozenset()

    def test_k_below_two_rejected(self):
        with pytest.raises(RefinementError, match="k >= 2"):
            RefinementConfig(home_buffer_capacity=1)


class TestRefinementPlan:
    def test_lookups(self):
        plan = RefinementPlan(fused=(FusedPair("req", "gr", REMOTE),
                                     FusedPair("inv", "ID", HOME_SIDE)))
        assert plan.reply_of == {"req": "gr", "inv": "ID"}
        assert plan.remote_fused_requests == frozenset({"req"})
        assert plan.home_fused_requests == frozenset({"inv"})
        assert plan.reply_msgs == frozenset({"gr", "ID"})
        assert plan.is_fused_request("inv", sender_is_home=True)
        assert not plan.is_fused_request("inv", sender_is_home=False)

    def test_describe_mentions_ablation(self):
        plan = RefinementPlan(config=RefinementConfig(
            reserve_progress_buffer=False))
        assert "NO progress buffer" in plan.describe()


class TestRefine:
    def test_validates_protocol_first(self):
        h = ProcessBuilder.home("h")
        h.state("a", inp("m", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("m1", to="a"), out("m2", to="a"))
        with pytest.raises(ValidationError):
            refine(protocol("bad", h, r))

    def test_auto_detection_default(self, migratory):
        refined = refine(migratory)
        assert len(refined.plan.fused) == 2
        assert refined.name == "migratory-async"

    def test_no_reqreply_means_no_fusion(self, migratory):
        refined = refine(migratory, RefinementConfig(use_reqreply=False))
        assert refined.plan.fused == ()

    def test_explicit_pairs_verified(self, migratory):
        refined = refine(migratory,
                         fused_pairs=(FusedPair("req", "gr", REMOTE),))
        assert refined.plan.fused == (FusedPair("req", "gr", REMOTE),)

    def test_bad_explicit_pair_rejected(self, migratory):
        with pytest.raises(RefinementError, match="cannot be fused"):
            refine(migratory, fused_pairs=(FusedPair("req", "ID", REMOTE),))

    def test_explicit_pairs_with_reqreply_off_rejected(self, migratory):
        with pytest.raises(RefinementError):
            refine(migratory, RefinementConfig(use_reqreply=False),
                   fused_pairs=(FusedPair("req", "gr", REMOTE),))


class TestFireAndForget:
    def test_lr_accepted(self, migratory):
        refined = refine(migratory,
                         RefinementConfig(fire_and_forget=frozenset({"LR"})))
        assert "LR" in refined.plan.fire_and_forget

    def test_unknown_message_rejected(self, migratory):
        with pytest.raises(RefinementError, match="does not occur"):
            refine(migratory,
                   RefinementConfig(fire_and_forget=frozenset({"zzz"})))

    def test_fused_message_rejected(self, migratory):
        with pytest.raises(RefinementError, match="fused"):
            refine(migratory,
                   RefinementConfig(fire_and_forget=frozenset({"req"})))

    def test_remote_received_message_rejected(self, migratory):
        # inv flows home -> remote; the remote's single-slot buffer cannot
        # absorb unacknowledged traffic
        with pytest.raises(RefinementError, match="received by the remote"):
            refine(migratory, RefinementConfig(
                use_reqreply=False, fire_and_forget=frozenset({"inv"})))
