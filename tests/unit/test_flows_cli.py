"""Unit tests for the ``repro flows`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["flows", "migratory"])
        assert args.witness_nodes == 2 and args.buffer == 2
        assert not args.json and not args.dot and not args.strict

    def test_all_accepted(self):
        assert build_parser().parse_args(["flows", "all"]).protocol == "all"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flows", "mosi"])

    def test_epilog_shows_usage_examples(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flows", "--help"])
        out = capsys.readouterr().out
        assert "repro flows" in out and "--dot" in out


class TestTextOutput:
    def test_inventory_and_verdict_printed(self, capsys):
        assert main(["flows", "migratory"]) == 0
        out = capsys.readouterr().out
        assert "flow graph for migratory" in out
        assert "req@F" in out and "req@E" in out
        assert "deadlock-free-any-N" in out

    def test_all_protocols_discharge(self, capsys):
        assert main(["flows", "all", "--strict"]) == 0
        out = capsys.readouterr().out
        assert out.count("deadlock-free-any-N") == 4


class TestJsonOutput:
    def test_single_document(self, capsys):
        assert main(["flows", "msi", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["protocol"] == "msi"
        assert doc["complete"] is True
        assert doc["paramcheck"]["verdict"] == "deadlock-free-any-N"
        assert doc["paramcheck"]["witness"]["nodes"] == 2

    def test_all_is_one_json_array(self, capsys):
        assert main(["flows", "all", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["protocol"] for d in docs] == \
            ["invalidate", "mesi", "migratory", "msi"]

    def test_witness_nodes_forwarded(self, capsys):
        assert main(["flows", "migratory", "--json",
                     "--witness-nodes", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["paramcheck"]["witness"]["nodes"] == 3


class TestDotOutput:
    def test_dot_is_well_formed(self, capsys):
        assert main(["flows", "invalidate", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "invalidate flows" {')
        assert out.rstrip().endswith("}")
        assert "doublecircle" in out       # stable home states
        assert "cluster_0" in out          # one cluster per flow
        assert "shape=diamond" in out      # wait events stand out


class TestStrictExit:
    def test_strict_fails_when_not_discharged(self, capsys):
        # dropping the buffer reservations raises a P4503 obligation
        assert main(["flows", "migratory", "--strict",
                     "--no-progress-buffer"]) == 1
        out = capsys.readouterr().out
        assert "P4503" in out

    def test_non_strict_still_exits_zero(self, capsys):
        assert main(["flows", "migratory", "--no-progress-buffer"]) == 0
        assert "obligations" in capsys.readouterr().out
