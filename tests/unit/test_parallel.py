"""Unit tests for the parallel explorer (repro.check.parallel)."""

import pytest

from repro.check.explorer import explore
from repro.check.parallel import (
    SystemSpec,
    build_system,
    explore_parallel,
    register_factory,
)


class TestSystemSpec:
    def test_config_round_trip(self):
        spec = SystemSpec(protocol="migratory", level="async", n_remotes=2,
                          config=(("home_buffer_capacity", 3),))
        assert spec.config_dict() == {"home_buffer_capacity": 3}

    def test_build_rendezvous(self):
        system = build_system(SystemSpec("migratory", "rendezvous", 3))
        assert system.n_remotes == 3

    def test_build_async_with_config(self):
        system = build_system(SystemSpec(
            "migratory", "async", 2,
            config=(("use_reqreply", False),)))
        assert system.plan.fused == ()

    def test_build_symmetric(self):
        system = build_system(SystemSpec("migratory", "rendezvous", 3,
                                         symmetry=True))
        assert hasattr(system, "inner")

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            build_system(SystemSpec("nope", "rendezvous", 2))

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            build_system(SystemSpec("migratory", "sideways", 2))

    def test_registered_factory(self):
        from repro.protocols.migratory import migratory_protocol
        register_factory("custom-migratory", migratory_protocol)
        system = build_system(SystemSpec("custom-migratory",
                                         "rendezvous", 2))
        assert system.protocol.name == "migratory"


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("spec", [
        SystemSpec("migratory", "rendezvous", 4),
        SystemSpec("migratory", "async", 3),
        SystemSpec("invalidate", "rendezvous", 2),
    ])
    def test_counts_identical(self, spec):
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=8,
                                    chunk_size=32)
        assert parallel.n_states == sequential.n_states
        assert parallel.n_transitions == sequential.n_transitions
        assert parallel.completed

    def test_workers_one_falls_back_to_sequential(self):
        spec = SystemSpec("migratory", "rendezvous", 3)
        result = explore_parallel(spec, workers=1)
        assert result.completed
        assert result.n_states == explore(build_system(spec)).n_states

    def test_budget_respected(self):
        spec = SystemSpec("migratory", "async", 4)
        result = explore_parallel(spec, workers=2, max_states=500,
                                  fanout_threshold=8)
        assert not result.completed
        assert "budget" in result.stop_reason

    def test_symmetric_parallel(self):
        spec = SystemSpec("migratory", "async", 3, symmetry=True)
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=8)
        assert parallel.n_states == sequential.n_states
