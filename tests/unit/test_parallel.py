"""Unit tests for the parallel explorer (repro.check.parallel)."""

import pytest

from repro.check.explorer import explore
from repro.check.parallel import (
    SystemSpec,
    build_system,
    explore_parallel,
    register_factory,
    shippable_spec,
)


class TestSystemSpec:
    def test_config_round_trip(self):
        spec = SystemSpec(protocol="migratory", level="async", n_remotes=2,
                          config=(("home_buffer_capacity", 3),))
        assert spec.config_dict() == {"home_buffer_capacity": 3}

    def test_build_rendezvous(self):
        system = build_system(SystemSpec("migratory", "rendezvous", 3))
        assert system.n_remotes == 3

    def test_build_async_with_config(self):
        system = build_system(SystemSpec(
            "migratory", "async", 2,
            config=(("use_reqreply", False),)))
        assert system.plan.fused == ()

    def test_build_symmetric(self):
        system = build_system(SystemSpec("migratory", "rendezvous", 3,
                                         symmetry=True))
        assert hasattr(system, "inner")

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            build_system(SystemSpec("nope", "rendezvous", 2))

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            build_system(SystemSpec("migratory", "sideways", 2))

    def test_registered_factory(self):
        from repro.protocols.migratory import migratory_protocol
        register_factory("custom-migratory", migratory_protocol)
        system = build_system(SystemSpec("custom-migratory",
                                         "rendezvous", 2))
        assert system.protocol.name == "migratory"


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("spec", [
        SystemSpec("migratory", "rendezvous", 4),
        SystemSpec("migratory", "async", 3),
        SystemSpec("invalidate", "rendezvous", 2),
    ])
    def test_counts_identical(self, spec):
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=8,
                                    chunk_size=32)
        assert parallel.n_states == sequential.n_states
        assert parallel.n_transitions == sequential.n_transitions
        assert parallel.completed

    def test_workers_one_falls_back_to_sequential(self):
        spec = SystemSpec("migratory", "rendezvous", 3)
        result = explore_parallel(spec, workers=1)
        assert result.completed
        assert result.n_states == explore(build_system(spec)).n_states

    def test_budget_respected(self):
        spec = SystemSpec("migratory", "async", 4)
        result = explore_parallel(spec, workers=2, max_states=500,
                                  fanout_threshold=8)
        assert not result.completed
        assert "budget" in result.stop_reason

    def test_symmetric_parallel(self):
        spec = SystemSpec("migratory", "async", 3, symmetry=True)
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=8)
        assert parallel.n_states == sequential.n_states

    def test_truncated_counts_identical(self):
        # the historical divergence: budgets used to be checked per level,
        # so a parallel run overshot max_states by up to a whole frontier
        spec = SystemSpec("migratory", "async", 3)
        for budget in (50, 123, 500):
            sequential = explore(build_system(spec), max_states=budget)
            parallel = explore_parallel(spec, workers=2, max_states=budget,
                                        fanout_threshold=8, chunk_size=32)
            assert parallel.n_states == sequential.n_states
            assert parallel.n_transitions == sequential.n_transitions
            assert parallel.deadlock_count == sequential.deadlock_count
            assert parallel.stop_reason == sequential.stop_reason

    def test_parallel_reports_memory(self):
        result = explore_parallel(SystemSpec("migratory", "rendezvous", 3),
                                  workers=2, fanout_threshold=4, chunk_size=8)
        assert result.approx_bytes > 0

    def test_fingerprint_store_in_parallel(self):
        spec = SystemSpec("migratory", "rendezvous", 3)
        result = explore_parallel(spec, workers=2, fanout_threshold=4,
                                  chunk_size=8, store="fingerprint")
        assert result.store == "fingerprint"
        assert result.fingerprint_collisions == 0
        assert result.n_states == explore(build_system(spec)).n_states


class TestSpawnWorkers:
    """Registered factories must reach workers under the spawn start method.

    ``spawn`` workers inherit nothing from the parent, so the in-process
    ``_EXTRA_FACTORIES`` registry is empty there; the regression fixed
    here is that the factory's ``module:function`` path now rides inside
    the SystemSpec and is resolved by import on the worker side.
    """

    def test_registered_path_is_shipped(self):
        from repro.protocols.migratory import migratory_protocol
        register_factory("spawn-migratory", migratory_protocol)
        spec = shippable_spec(SystemSpec("spawn-migratory", "rendezvous", 2))
        assert spec.factory == "repro.protocols.migratory:migratory_protocol"

    def test_lambda_factory_has_no_path(self):
        from repro.protocols.migratory import migratory_protocol
        register_factory("spawn-lambda", lambda: migratory_protocol())
        spec = shippable_spec(SystemSpec("spawn-lambda", "rendezvous", 2))
        assert spec.factory is None  # still fine in-process / under fork

    def test_registered_factory_under_spawn(self):
        from repro.protocols.migratory import migratory_protocol
        register_factory("spawn-migratory", migratory_protocol)
        spec = SystemSpec("spawn-migratory", "rendezvous", 2)
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=1,
                                    chunk_size=4, start_method="spawn")
        assert parallel.n_states == sequential.n_states
        assert parallel.n_transitions == sequential.n_transitions

    def test_explicit_factory_path_under_spawn(self):
        spec = SystemSpec(
            "anything", "rendezvous", 2,
            factory="repro.protocols.invalidate:invalidate_protocol")
        sequential = explore(build_system(spec))
        parallel = explore_parallel(spec, workers=2, fanout_threshold=1,
                                    chunk_size=4, start_method="spawn")
        assert parallel.n_states == sequential.n_states
