"""Unit tests for request/reply fusion detection (repro.refine.reqreply)."""

import pytest

from repro.csp.ast import AnySender, VarSender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.refine.plan import HOME_SIDE, REMOTE, FusedPair
from repro.refine.reqreply import check_pair, detect_fusable_pairs


class TestMigratoryDetection:
    def test_detects_both_pairs(self, migratory):
        pairs = set(detect_fusable_pairs(migratory))
        assert FusedPair("req", "gr", REMOTE) in pairs
        assert FusedPair("inv", "ID", HOME_SIDE) in pairs
        assert len(pairs) == 2

    def test_lr_never_fused(self, migratory):
        # LR's sender returns to I, which is an active state, not an input
        for pair in detect_fusable_pairs(migratory):
            assert pair.request_msg != "LR"
            assert pair.reply_msg != "LR"

    def test_inv_lr_pair_rejected(self, migratory):
        # LR is an adjacent input after inv at the home, but the remote
        # responder for inv answers ID, not LR
        reason = check_pair(migratory, FusedPair("inv", "LR", HOME_SIDE))
        assert reason is not None and "ID" not in (reason or "")


class TestInvalidateDetection:
    def test_detects_four_pairs(self, invalidate):
        pairs = {(p.request_msg, p.reply_msg) for p in
                 detect_fusable_pairs(invalidate)}
        assert pairs == {("reqR", "grR"), ("reqW", "grW"),
                         ("invS", "IA"), ("inv", "ID")}

    def test_strict_cycles_rejects_reqw(self, invalidate):
        # the reqW reply path goes through the invalidation loop
        reason = check_pair(invalidate, FusedPair("reqW", "grW", REMOTE),
                            strict_cycles=True)
        assert reason is not None and "cycle" in reason
        pairs = {p.request_msg for p in
                 detect_fusable_pairs(invalidate, strict_cycles=True)}
        assert "reqW" not in pairs
        assert "reqR" in pairs

    def test_evs_not_fused(self, invalidate):
        assert all(p.request_msg != "evS"
                   for p in detect_fusable_pairs(invalidate))


class TestMsiDetection:
    def test_requ_not_fused_two_possible_replies(self, msi):
        """The upgrade request awaits grU *or* upfail: not fusable."""
        pairs = {p.request_msg for p in detect_fusable_pairs(msi)}
        assert "reqU" not in pairs
        reason = check_pair(msi, FusedPair("reqU", "grU", REMOTE))
        assert reason is not None


class TestChainedFusionSelection:
    """acq/ok and ok/rel can both pass the checks; detection must pick a
    non-overlapping subset (found by the tutorial's lock protocol)."""

    def _lock(self):
        from repro.csp.ast import VarSender
        h = ProcessBuilder.home("lock-home", holder=None)
        h.state("Free", inp("acq", sender=AnySender(),
                            bind_sender="holder", to="Grant"))
        h.state("Grant", out("ok", target=VarTarget("holder"), to="Held"))
        h.state("Held", inp("rel", sender=VarSender("holder"),
                            update=lambda env: env.set("holder", None),
                            to="Free"))
        r = ProcessBuilder.remote("lock-remote")
        r.state("idle", tau("want", to="ask"))
        r.state("ask", out("acq", to="wait"))
        r.state("wait", inp("ok", to="crit"))
        r.state("crit", tau("done", to="release"))
        r.state("release", out("rel", to="idle"))
        return protocol("lock", h, r)

    def test_greedy_picks_remote_initiated_pair(self):
        pairs = detect_fusable_pairs(self._lock())
        assert pairs == (FusedPair("acq", "ok", REMOTE),)

    def test_explicit_overlap_rejected(self):
        from repro import refine
        from repro.errors import RefinementError
        with pytest.raises(RefinementError, match="both a fused"):
            refine(self._lock(),
                   fused_pairs=(FusedPair("acq", "ok", REMOTE),
                                FusedPair("ok", "rel", HOME_SIDE)))

    def test_lock_refines_and_simulates_correctly(self):
        from repro import AsyncSystem, refine
        from repro.check.simulation import check_simulation
        refined = refine(self._lock())
        report = check_simulation(AsyncSystem(refined, 2))
        assert report.ok


class TestHomeSidePathAnalysis:
    def _home_base(self):
        b = ProcessBuilder.home("h", j=None)
        b.state("wait", inp("ping", sender=AnySender(), bind_sender="j",
                            to="mid"))
        return b

    def _remote(self):
        b = ProcessBuilder.remote("r")
        b.state("send", out("ping", to="recv"))
        b.state("recv", inp("pong", to="send"))
        return b.build()

    def test_direct_reply_accepted(self):
        h = self._home_base()
        h.state("mid", out("pong", target=VarTarget("j"), to="wait"))
        proto = protocol("p", h.build(), self._remote())
        assert check_pair(proto, FusedPair("ping", "pong", REMOTE)) is None

    def test_other_message_to_requester_first_rejected(self):
        h = self._home_base()
        h.state("mid", out("poke", target=VarTarget("j"), to="mid2"))
        h.state("mid2", out("pong", target=VarTarget("j"), to="wait"))
        proto = protocol("p", h.build(), self._remote())
        reason = check_pair(proto, FusedPair("ping", "pong", REMOTE))
        assert reason is not None and "poke" in reason

    def test_waiting_on_requester_rejected(self):
        h = self._home_base()
        h.state("mid", inp("extra", sender=VarSender("j"), to="mid2"))
        h.state("mid2", out("pong", target=VarTarget("j"), to="wait"))
        r = ProcessBuilder.remote("r")
        r.state("send", out("ping", to="recv"))
        r.state("recv", inp("pong", to="send"))
        proto = protocol("p", h.build(), r.build())
        reason = check_pair(proto, FusedPair("ping", "pong", REMOTE))
        assert reason is not None and "silently-blocked" in reason

    def test_rebinding_requester_var_rejected(self):
        h = self._home_base()
        h.state("mid", inp("ping2", sender=AnySender(), bind_sender="j",
                           to="mid2"))
        h.state("mid2", out("pong", target=VarTarget("j"), to="wait"))
        r = ProcessBuilder.remote("r")
        r.state("send", out("ping", to="recv"))
        r.state("recv", inp("pong", to="send"))
        proto = protocol("p", h.build(), r.build())
        reason = check_pair(proto, FusedPair("ping", "pong", REMOTE))
        assert reason is not None and "rebind" in reason

    def test_missing_sender_binding_rejected(self):
        b = ProcessBuilder.home("h", j=0)
        b.state("wait", inp("ping", sender=AnySender(), to="mid"))
        b.state("mid", out("pong", target=VarTarget("j"), to="wait"))
        proto = protocol("p", b.build(), self._remote())
        reason = check_pair(proto, FusedPair("ping", "pong", REMOTE))
        assert reason is not None and "bind" in reason


class TestRemoteResponderAnalysis:
    def _home(self):
        b = ProcessBuilder.home("h", o=0)
        b.state("go", out("poke", target=VarTarget("o"), to="wait"))
        b.state("wait", inp("yes", sender=VarSender("o"), to="go"))
        return b.build()

    def test_local_actions_between_accepted(self):
        r = ProcessBuilder.remote("r")
        r.state("idle", inp("poke", to="think"))
        r.state("think", tau("compute", to="reply"))
        r.state("reply", out("yes", to="idle"))
        proto = protocol("p", self._home(), r.build())
        assert check_pair(proto, FusedPair("poke", "yes", HOME_SIDE)) is None

    def test_branching_after_request_rejected(self):
        r = ProcessBuilder.remote("r")
        r.state("idle", inp("poke", to="both"))
        r.state("both", inp("other", to="idle"), tau("t", to="reply"))
        r.state("reply", out("yes", to="idle"))
        proto = protocol("p", self._home(), r.build())
        reason = check_pair(proto, FusedPair("poke", "yes", HOME_SIDE))
        assert reason is not None
