"""The symbolic simulation-obligation checker (analysis.simulation).

Three layers of evidence:

* every shipped protocol's refinement earns a clean certificate (zero
  P44xx errors), which is also what gates ``refine()``;
* seeded step-table mutants — a corrupted ack fast-forward target, a
  fabricated fused reply ("dropping" the ack handshake), a corrupted
  home rewind target — are flagged with the intended P44xx codes **and**
  confirmed independently by explicit-state exploration of the same
  mutant semantics (the differential harness in miniature);
* the report structure itself: obligation accounting, truncation
  behaviour, the fire-and-forget carve-out.
"""

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.simulation import CertificateReport, check_certificate
from repro.errors import CertificateError, RefinementError
from repro.protocols.handwritten import handwritten_migratory
from repro.protocols.invalidate import invalidate_protocol
from repro.protocols.mesi import mesi_protocol
from repro.protocols.migratory import migratory_protocol
from repro.protocols.msi import msi_protocol
from repro.refine.abstraction import AbstractionUndefined
from repro.refine.engine import _gate_on_certificate, refine
from repro.refine.plan import (
    RefinedProtocol,
    RefinementConfig,
    RefinementPlan,
)
from repro.refine.transitions import REMOTE, build_step_table
from repro.semantics.asynchronous import AsyncSystem


def error_codes(report: CertificateReport) -> set[str]:
    return {d.code for d in report.diagnostics
            if d.severity >= Severity.ERROR}


@pytest.fixture(scope="module")
def migratory_refined():
    return refine(migratory_protocol())


@pytest.fixture(scope="module")
def migratory_table(migratory_refined):
    return build_step_table(migratory_refined)


class TestShippedProtocols:
    @pytest.mark.parametrize("factory", [
        migratory_protocol, invalidate_protocol, msi_protocol, mesi_protocol,
    ])
    def test_clean_certificate(self, factory):
        report = check_certificate(refine(factory()))
        assert report.complete
        assert report.ok, report.describe()
        assert not error_codes(report)

    def test_handwritten_uses_the_carve_out(self):
        """The hand-tuned protocol's fire-and-forget notes are carved, not
        errors — the carve-out is load-bearing, not decorative."""
        report = check_certificate(handwritten_migratory())
        assert report.ok, report.describe()
        assert report.n_carved > 0

    def test_fused_pairs_need_multi_step_obligations(self):
        """A home-initiated fused response jumps two rendezvous in one
        asynchronous step; the checker must discharge it as a bounded
        multi-hop mapping, not reject it."""
        report = check_certificate(refine(msi_protocol()))
        assert report.n_mapped_deep > 0

    def test_accounting_adds_up(self, migratory_refined):
        report = check_certificate(migratory_refined)
        assert report.n_obligations == (report.n_stutters + report.n_mapped
                                        + report.n_mapped_deep
                                        + report.n_carved)
        assert report.n_contexts > 0
        assert report.closure_states > report.n_contexts
        # competition between the two remotes must actually occur, or the
        # T3-T6 buffering/nacking rows were never exercised
        assert report.n_interference > 0

    def test_report_rendering(self, migratory_refined):
        report = check_certificate(migratory_refined)
        assert "obligations" in report.inventory()
        assert report.subject == migratory_refined.name
        assert "CERTIFICATE HOLDS" in report.describe()


class TestSeededMutants:
    """Each mutant must be flagged by the symbolic checker AND confirmed
    by explicit-state exploration of the same mutant table."""

    def test_corrupt_ack_forward_target(self, migratory_refined,
                                        migratory_table):
        mutant = migratory_table.mutate(REMOTE, "V.lr", 0,
                                        forward_to="V.id")
        report = check_certificate(migratory_refined, table=mutant)
        assert not report.ok
        assert error_codes(report) == {"P4401", "P4404"}

        from repro.check.simulation import check_simulation
        sim = check_simulation(AsyncSystem(migratory_refined, 2,
                                           table=mutant),
                               max_states=20_000)
        assert not sim.ok, "explorer must confirm the symbolic verdict"
        assert sim.failures

    def test_fabricated_fused_reply_drops_the_ack(self, migratory_refined,
                                                  migratory_table):
        """Pretending LR is fused to gr removes its ack handshake; the
        transient requester then has no witness message anywhere."""
        mutant = migratory_table.mutate(REMOTE, "V.lr", 0,
                                        fused_reply="gr", reply_to="V.id")
        report = check_certificate(migratory_refined, table=mutant)
        assert not report.ok
        assert error_codes(report) == {"P4403", "P4404"}

        from repro.check.simulation import check_simulation
        with pytest.raises(AbstractionUndefined):
            check_simulation(AsyncSystem(migratory_refined, 2, table=mutant),
                             max_states=20_000)

    def test_corrupt_home_rewind_target(self, migratory_refined,
                                        migratory_table):
        """The implicit-nack rewind row only fires when home's request
        races a remote's — a flow involving both remotes, which the
        two-node closure must still reach."""
        mutant = migratory_table.mutate("home", "I1", 0, rewind_to="F1")
        report = check_certificate(migratory_refined, table=mutant)
        assert not report.ok
        assert error_codes(report) == {"P4401", "P4404"}

        from repro.check.simulation import check_simulation
        sim = check_simulation(AsyncSystem(migratory_refined, 2,
                                           table=mutant),
                               max_states=20_000)
        assert not sim.ok, "explorer must confirm the symbolic verdict"

    def test_clean_table_mutated_identically_stays_clean(
            self, migratory_refined, migratory_table):
        """mutate() with the row's own values is the identity — the
        harness's faults come from the changes, not the copying."""
        spec = migratory_table.spec(REMOTE, "V.lr", 0)
        same = migratory_table.mutate(REMOTE, "V.lr", 0,
                                      rewind_to=spec.rewind_to)
        report = check_certificate(migratory_refined, table=same)
        assert report.ok, report.describe()


class TestRefineGate:
    def test_refine_output_is_certified(self):
        # would have raised if the certificate failed
        refined = refine(invalidate_protocol())
        assert check_certificate(refined).ok

    def test_gate_rejects_inconsistent_plan(self, migratory_refined):
        """A plan that declares a handshake request fire-and-forget
        produces non-commuting schema rows; the gate must refuse it."""
        bogus = RefinedProtocol(
            protocol=migratory_refined.protocol,
            plan=RefinementPlan(
                config=RefinementConfig(
                    fire_and_forget=frozenset({"req"})),
                fused=migratory_refined.plan.fused))
        with pytest.raises(CertificateError) as excinfo:
            _gate_on_certificate(bogus)
        assert excinfo.value.diagnostics
        assert any(d.code == "P4401" for d in excinfo.value.diagnostics)

    def test_certificate_error_is_a_refinement_error(self):
        assert issubclass(CertificateError, RefinementError)


class TestBudgets:
    def test_truncation_is_reported_not_silent(self):
        report = check_certificate(refine(msi_protocol()),
                                   max_expansions=500)
        assert not report.complete
        assert any(d.code == "P4406" for d in report.diagnostics)
        # truncation alone is a warning, not an error verdict
        assert report.ok

    def test_error_flood_is_capped(self, migratory_refined,
                                   migratory_table):
        mutant = migratory_table.mutate(REMOTE, "V.lr", 0,
                                        forward_to="V.id")
        report = check_certificate(migratory_refined, table=mutant,
                                   max_failures=1)
        errors = [d for d in report.diagnostics
                  if d.severity >= Severity.ERROR and d.code == "P4401"]
        assert len(errors) <= 1
        assert not report.ok
