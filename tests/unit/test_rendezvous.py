"""Unit tests for the rendezvous semantics (repro.semantics.rendezvous)."""

import pytest

from repro.csp.ast import AnySender, VarTarget, DATA
from repro.csp.builder import ProcessBuilder, inp, out, protocol
from repro.errors import SemanticsError
from repro.semantics.rendezvous import (
    RendezvousStep,
    RendezvousSystem,
    TauStep,
)
from repro.semantics.state import HOME_ID


def ping_pong():
    """Remote sends ping, home answers pong, forever."""
    h = ProcessBuilder.home("h", j=None)
    h.state("wait", inp("ping", sender=AnySender(), bind_sender="j",
                        to="answer"))
    h.state("answer", out("pong", target=VarTarget("j"),
                          update=lambda env: env.set("j", None), to="wait"))
    r = ProcessBuilder.remote("r")
    r.state("send", out("ping", to="recv"))
    r.state("recv", inp("pong", to="send"))
    return protocol("ping-pong", h, r)


class TestInitialState:
    def test_initial_layout(self, migratory):
        system = RendezvousSystem(migratory, 3)
        init = system.initial_state()
        assert init.home.state == "F"
        assert [r.state for r in init.remotes] == ["I", "I", "I"]
        assert init.n_remotes == 3

    def test_requires_positive_remotes(self, migratory):
        with pytest.raises(SemanticsError):
            RendezvousSystem(migratory, 0)


class TestActionEnumeration:
    def test_ping_offers_from_every_remote(self):
        system = RendezvousSystem(ping_pong(), 3)
        actions = system.actions(system.initial_state())
        assert sorted(a.active for a in actions) == [0, 1, 2]
        assert all(isinstance(a, RendezvousStep) and a.msg == "ping"
                   for a in actions)

    def test_answer_targets_recorded_requester(self):
        system = RendezvousSystem(ping_pong(), 2)
        state = system.apply(system.initial_state(),
                             RendezvousStep(active=1, passive=HOME_ID,
                                            msg="ping"))
        actions = system.actions(state)
        pongs = [a for a in actions if isinstance(a, RendezvousStep)
                 and a.msg == "pong"]
        assert len(pongs) == 1
        assert pongs[0].active == HOME_ID and pongs[0].passive == 1

    def test_tau_enumeration(self, migratory_rw):
        system = RendezvousSystem(migratory_rw, 2)
        actions = system.actions(system.initial_state())
        assert all(isinstance(a, TauStep) and a.label == "rw" for a in actions)
        assert sorted(a.proc for a in actions) == [0, 1]

    def test_var_sender_restricts_input(self, migratory):
        # in state E, LR is only accepted from the recorded owner
        system = RendezvousSystem(migratory, 2)
        state = system.initial_state()
        # drive r0 to V: req then gr
        state = system.apply(state, RendezvousStep(0, HOME_ID, "req"))
        state = system.apply(state, RendezvousStep(HOME_ID, 0, "gr",
                                                   payload=DATA))
        assert state.home.state == "E"
        assert state.home.env["o"] == 0
        assert state.remotes[0].state == "V"


class TestApply:
    def test_apply_rendezvous_moves_both_parties(self):
        system = RendezvousSystem(ping_pong(), 2)
        state = system.apply(system.initial_state(),
                             RendezvousStep(active=0, passive=HOME_ID,
                                            msg="ping"))
        assert state.home.state == "answer"
        assert state.home.env["j"] == 0
        assert state.remotes[0].state == "recv"
        assert state.remotes[1].state == "send"  # bystander untouched

    def test_apply_unenabled_action_raises(self):
        system = RendezvousSystem(ping_pong(), 2)
        with pytest.raises(SemanticsError):
            system.apply(system.initial_state(),
                         RendezvousStep(active=HOME_ID, passive=0,
                                        msg="pong"))

    def test_apply_unknown_tau_raises(self):
        system = RendezvousSystem(ping_pong(), 1)
        with pytest.raises(SemanticsError):
            system.apply(system.initial_state(), TauStep(proc=0, label="zz"))

    def test_states_are_hashable_values(self):
        system = RendezvousSystem(ping_pong(), 2)
        a = system.initial_state()
        b = system.apply(a, RendezvousStep(0, HOME_ID, "ping"))
        c = system.apply(b, RendezvousStep(HOME_ID, 0, "pong"))
        assert a == c  # back to the initial configuration
        assert hash(a) == hash(c)
        assert a != b


class TestProgressLabelling:
    def test_rendezvous_is_progress_tau_is_not(self, migratory_rv2):
        assert migratory_rv2.is_progress(
            RendezvousStep(0, HOME_ID, "req"))
        assert not migratory_rv2.is_progress(TauStep(proc=0, label="rw"))


class TestMigratoryWalk:
    def test_full_migration_cycle(self, migratory):
        """Drive the line I -> V at r0, migrate to r1 via inv/ID."""
        system = RendezvousSystem(migratory, 2)
        s = system.initial_state()
        s = system.apply(s, RendezvousStep(0, HOME_ID, "req"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "gr", payload=DATA))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "req"))
        assert s.home.state == "I1" and s.home.env["j"] == 1
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "inv"))
        assert s.remotes[0].state == "V.id"
        s = system.apply(s, RendezvousStep(0, HOME_ID, "ID", payload=DATA))
        assert s.home.state == "I3"
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "gr", payload=DATA))
        assert s.home.state == "E" and s.home.env["o"] == 1
        assert s.remotes[1].state == "V"
        assert s.remotes[0].state == "I"

    def test_eviction_path(self, migratory):
        system = RendezvousSystem(migratory, 1)
        s = system.initial_state()
        s = system.apply(s, RendezvousStep(0, HOME_ID, "req"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "gr", payload=DATA))
        s = system.apply(s, TauStep(proc=0, label="evict"))
        assert s.remotes[0].state == "V.lr"
        s = system.apply(s, RendezvousStep(0, HOME_ID, "LR", payload=DATA))
        assert s.home.state == "F"
        assert s.home.env["o"] is None
