"""Unit tests for the immutable environment (repro.csp.env)."""

import pytest

from repro.csp.env import EMPTY_ENV, Env


class TestConstruction:
    def test_empty(self):
        env = Env()
        assert len(env) == 0
        assert list(env) == []

    def test_from_mapping(self):
        env = Env({"a": 1, "b": None})
        assert env["a"] == 1
        assert env["b"] is None

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError):
            Env({1: "x"})

    def test_rejects_unhashable_values(self):
        with pytest.raises(TypeError):
            Env({"a": [1, 2]})

    def test_frozenset_values_allowed(self):
        env = Env({"S": frozenset({1, 2})})
        assert env["S"] == frozenset({1, 2})

    def test_empty_env_singleton_equals_fresh(self):
        assert EMPTY_ENV == Env()


class TestMappingInterface:
    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Env({"a": 1})["b"]

    def test_contains(self):
        env = Env({"a": 1})
        assert "a" in env
        assert "b" not in env

    def test_iteration_order_is_sorted(self):
        env = Env({"z": 1, "a": 2, "m": 3})
        assert list(env) == ["a", "m", "z"]

    def test_get_default(self):
        env = Env({"a": 1})
        assert env.get("b", 42) == 42

    def test_as_dict_round_trip(self):
        data = {"a": 1, "b": frozenset({3})}
        assert Env(data).as_dict() == data


class TestPersistence:
    def test_set_returns_new_env(self):
        env = Env({"a": 1})
        env2 = env.set("a", 2)
        assert env["a"] == 1
        assert env2["a"] == 2

    def test_set_undeclared_raises(self):
        with pytest.raises(KeyError):
            Env({"a": 1}).set("b", 2)

    def test_update_multiple(self):
        env = Env({"a": 1, "b": 2})
        env2 = env.update({"a": 10, "b": 20})
        assert (env2["a"], env2["b"]) == (10, 20)

    def test_update_undeclared_raises(self):
        with pytest.raises(KeyError):
            Env({"a": 1}).update({"a": 2, "zzz": 3})

    def test_noop_set_equal(self):
        env = Env({"a": 1})
        assert env.set("a", 1) == env


class TestIdentity:
    def test_equality_structural(self):
        assert Env({"a": 1, "b": 2}) == Env({"b": 2, "a": 1})

    def test_inequality(self):
        assert Env({"a": 1}) != Env({"a": 2})

    def test_hash_consistent_with_equality(self):
        assert hash(Env({"a": 1, "b": 2})) == hash(Env({"b": 2, "a": 1}))

    def test_usable_as_dict_key(self):
        d = {Env({"a": 1}): "x"}
        assert d[Env({"a": 1})] == "x"

    def test_not_equal_to_plain_dict(self):
        assert Env({"a": 1}) != {"a": 1}

    def test_repr_mentions_bindings(self):
        assert "a=1" in repr(Env({"a": 1}))
