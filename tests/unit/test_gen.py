"""Unit tests for the random protocol generator (repro.gen)."""

import pytest

from repro.csp.validate import collect_violations
from repro.gen import GeneratorParams, random_protocol


class TestGeneratorOutputs:
    @pytest.mark.parametrize("seed", range(12))
    def test_always_valid(self, seed):
        assert collect_violations(random_protocol(seed)) == []

    def test_deterministic_per_seed(self):
        a, b = random_protocol(5), random_protocol(5)
        assert set(a.home.states) == set(b.home.states)
        assert a.message_types == b.message_types
        # guard shapes identical state by state
        for name in a.remote.states:
            ga = [g.describe() for g in a.remote.state(name).guards]
            gb = [g.describe() for g in b.remote.state(name).guards]
            assert ga == gb

    def test_seeds_differ(self):
        shapes = set()
        for seed in range(10):
            proto = random_protocol(seed)
            shape = tuple(
                tuple(g.describe() for g in proto.remote.state(s).guards)
                for s in sorted(proto.remote.states))
            shapes.add(shape)
        assert len(shapes) > 3

    def test_params_respected(self):
        params = GeneratorParams(n_remote_states=6, n_home_states=3,
                                 n_remote_msgs=4, n_home_msgs=1)
        proto = random_protocol(0, params)
        assert len(proto.remote.states) == 6
        assert len(proto.home.states) == 3

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            GeneratorParams(n_remote_states=1)
        with pytest.raises(ValueError):
            GeneratorParams(n_remote_msgs=0)

    @pytest.mark.parametrize("seed", range(8))
    def test_no_internal_only_cycles_by_construction(self, seed):
        proto = random_protocol(seed)
        for state in proto.remote.states.values():
            for guard in state.taus:
                assert proto.remote.state(guard.to).is_communication
