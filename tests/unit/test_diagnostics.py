"""Unit tests for the diagnostics core (repro.analysis.diagnostics)."""

import json
import pathlib

import pytest

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    make,
    render_json,
    render_text,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.WARNING, Severity.ERROR,
                    Severity.INFO]) is Severity.ERROR

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.WARNING.label == "warning"
        assert Severity.INFO.label == "info"


class TestCodeRegistry:
    def test_codes_match_their_keys(self):
        for code, info in CODES.items():
            assert info.code == code

    def test_every_code_has_title_and_section(self):
        for info in CODES.values():
            assert info.title and info.section

    def test_restriction_codes_are_errors(self):
        for code in ("P2401", "P2402", "P2403", "P2404", "P2405",
                     "P2406", "P2407", "P2408", "P2409"):
            assert CODES[code].default_severity is Severity.ERROR

    def test_every_code_documented(self):
        """docs/ANALYSIS.md catalogues every registered code."""
        doc = (pathlib.Path(__file__).parents[2]
               / "docs" / "ANALYSIS.md").read_text()
        for code in CODES:
            assert code in doc, f"{code} missing from docs/ANALYSIS.md"


class TestDiagnostic:
    def test_make_uses_registered_severity(self):
        d = make("P2401", "p.s", "boom")
        assert d.severity is Severity.ERROR

    def test_make_severity_override(self):
        d = make("P2401", "p.s", "boom", severity=Severity.INFO)
        assert d.severity is Severity.INFO

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            make("P9999", "p.s", "boom")

    def test_legacy_text_is_location_colon_message(self):
        d = make("P2401", "proc.state", "terminal state")
        assert d.legacy_text == "proc.state: terminal state"

    def test_render_includes_code_severity_and_hint(self):
        d = make("P2501", "p.dead", "unreachable", hint="delete it")
        text = d.render()
        assert "P2501" in text and "warning" in text
        assert "hint: delete it" in text

    def test_as_dict_carries_registry_metadata(self):
        payload = make("P3301", "p:req", "fusable").as_dict()
        assert payload["section"] == "3.3"
        assert payload["title"] == "request/reply pair fusable"
        assert payload["severity"] == "info"


def _report():
    return AnalysisReport(
        subject="demo",
        diagnostics=(
            make("P3301", "demo:req", "fusable"),
            make("P2501", "r.x", "unreachable"),
            make("P2401", "r.dead", "terminal"),
        ),
        passes_run=("restrictions", "fusability"))


class TestAnalysisReport:
    def test_severity_buckets(self):
        report = _report()
        assert [d.code for d in report.errors] == ["P2401"]
        assert [d.code for d in report.warnings] == ["P2501"]
        assert [d.code for d in report.infos] == ["P3301"]

    def test_max_severity_and_ok(self):
        report = _report()
        assert report.max_severity is Severity.ERROR
        assert not report.ok
        assert AnalysisReport(subject="empty").max_severity is None
        assert AnalysisReport(subject="empty").ok

    def test_codes_and_len(self):
        report = _report()
        assert report.codes() == {"P3301", "P2501", "P2401"}
        assert len(report) == 3

    def test_select(self):
        narrowed = _report().select(["P2401"])
        assert [d.code for d in narrowed] == ["P2401"]
        assert narrowed.subject == "demo"

    def test_select_unknown_code_rejected(self):
        with pytest.raises(KeyError, match="P0000"):
            _report().select(["P0000"])

    def test_render_text_worst_first(self):
        lines = render_text(_report()).splitlines()
        assert "1 error(s), 1 warning(s), 1 note(s)" in lines[0]
        codes = [line.split()[0] for line in lines[1:]]
        assert codes == ["P2401", "P2501", "P3301"]

    def test_render_json_roundtrips(self):
        payload = json.loads(render_json(_report()))
        assert payload["subject"] == "demo"
        assert payload["summary"] == {"errors": 1, "warnings": 1, "infos": 1}
        assert payload["passes"] == ["restrictions", "fusability"]
        assert {d["code"] for d in payload["diagnostics"]} == \
            {"P3301", "P2501", "P2401"}
