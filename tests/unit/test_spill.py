"""Unit tests for the mmap-backed spill tier (repro.check.spill)."""

import os
import struct

import pytest

from repro.check.spill import (
    HEADER_SIZE,
    MAGIC,
    RECORD_SIZE,
    SpillFile,
)


@pytest.fixture
def path(tmp_path):
    return tmp_path / "partition-0000.spill"


class TestRoundTrip:
    def test_empty_until_first_merge(self, path):
        spill = SpillFile(path)
        assert len(spill) == 0
        assert spill.spill_bytes == 0
        assert spill.lookup(42) is None
        assert 42 not in spill
        spill.close()

    def test_merge_then_lookup(self, path):
        spill = SpillFile(path)
        entries = {fp: fp ^ 0xDEAD for fp in (3, 1 << 63, 7, 2**64 - 1, 0)}
        spill.merge(entries)
        assert len(spill) == len(entries)
        for fp, check in entries.items():
            assert spill.lookup(fp) == check
            assert fp in spill
        assert spill.lookup(5) is None
        spill.close()

    def test_survives_reopen(self, path):
        spill = SpillFile(path)
        spill.merge({10: 100, 20: 200})
        spill.close()
        reopened = SpillFile(path)
        assert len(reopened) == 2
        assert reopened.lookup(10) == 100
        assert reopened.lookup(20) == 200
        reopened.close()

    def test_fingerprints_iterate_sorted(self, path):
        spill = SpillFile(path)
        spill.merge({5: 1, 1: 1, 9: 1})
        spill.merge({3: 1, 7: 1})
        assert list(spill.fingerprints()) == [1, 3, 5, 7, 9]
        spill.close()

    def test_file_size_matches_record_math(self, path):
        spill = SpillFile(path)
        spill.merge({i: i for i in range(37)})
        assert spill.spill_bytes == HEADER_SIZE + 37 * RECORD_SIZE
        assert os.path.getsize(path) == spill.spill_bytes
        spill.close()


class TestMerge:
    def test_successive_merges_accumulate(self, path):
        spill = SpillFile(path)
        spill.merge({i: i * 2 for i in range(0, 100, 2)})
        spill.merge({i: i * 3 for i in range(1, 100, 2)})
        assert len(spill) == 100
        assert spill.lookup(4) == 8
        assert spill.lookup(5) == 15
        spill.close()

    def test_incumbent_wins_on_duplicate_fingerprint(self, path):
        # A fingerprint already on disk keeps its original check value:
        # the on-disk record was admitted first, exactly as the in-memory
        # dict keeps the first check it saw.
        spill = SpillFile(path)
        spill.merge({7: 111})
        spill.merge({7: 999, 8: 222})
        assert len(spill) == 2
        assert spill.lookup(7) == 111
        assert spill.lookup(8) == 222
        spill.close()

    def test_empty_merge_is_noop(self, path):
        spill = SpillFile(path)
        spill.merge({1: 1})
        before = spill.spill_bytes
        spill.merge({})
        assert spill.spill_bytes == before
        assert spill.lookup(1) == 1
        spill.close()

    def test_no_stale_tmp_left_behind(self, path):
        spill = SpillFile(path)
        spill.merge({1: 1})
        spill.merge({2: 2})
        spill.close()
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []


class TestCorruption:
    def test_bad_magic_rejected(self, path):
        path.write_bytes(b"NOTSPILL" + b"\x00" * 8)
        with pytest.raises(ValueError, match="magic"):
            SpillFile(path)

    def test_truncated_body_rejected(self, path):
        spill = SpillFile(path)
        spill.merge({1: 1, 2: 2})
        spill.close()
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="header promises"):
            SpillFile(path)

    def test_header_count_is_authoritative(self, path):
        spill = SpillFile(path)
        spill.merge({1: 10})
        spill.close()
        raw = path.read_bytes()
        magic, count = struct.unpack_from(">8sQ", raw)
        assert magic == MAGIC and count == 1
