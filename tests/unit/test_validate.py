"""Unit tests for the paper's syntactic restrictions (repro.csp.validate)."""

import pytest

from repro.csp.ast import AnySender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.csp.validate import (
    collect_violations,
    validate_process,
    validate_protocol,
)
from repro.errors import ValidationError


def simple_home():
    b = ProcessBuilder.home("h")
    b.state("a", inp("m", sender=AnySender(), to="a"))
    return b.build()


def simple_remote():
    b = ProcessBuilder.remote("r")
    b.state("a", out("m", to="a"))
    return b.build()


class TestWellFormedProtocolsPass:
    def test_canonical_protocols(self, migratory, invalidate, msi):
        for proto in (migratory, invalidate, msi):
            assert validate_protocol(proto) is proto
            assert collect_violations(proto) == []

    def test_minimal_protocol(self):
        assert collect_violations(
            protocol("p", simple_home(), simple_remote())) == []


class TestRemoteRestrictions:
    def test_two_outputs_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="a"))
        with pytest.raises(ValidationError, match="single rendezvous"):
            validate_process(b.build())

    def test_output_mixed_with_input_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), inp("m2", to="a"))
        with pytest.raises(ValidationError, match="output non-determinism"):
            validate_process(b.build())

    def test_output_mixed_with_tau_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), tau("t", to="a"))
        with pytest.raises(ValidationError):
            validate_process(b.build())

    def test_passive_state_with_taus_allowed(self):
        # Figure 1(c): inputs plus autonomous decisions
        b = ProcessBuilder.remote("r")
        b.state("a", inp("m1", to="a"), inp("m2", to="b"), tau("evict", to="b"))
        b.state("b", out("m3", to="a"))
        assert validate_process(b.build())


class TestHomeRestrictions:
    def test_generalized_guards_allowed(self):
        b = ProcessBuilder.home("h", j=0)
        b.state("a",
                inp("m1", sender=AnySender(), to="a"),
                out("m2", target=VarTarget("j"), to="a"))
        assert validate_process(b.build())

    def test_tau_in_communication_state_rejected(self):
        b = ProcessBuilder.home("h")
        b.state("a", inp("m1", sender=AnySender(), to="a"), tau("t", to="a"))
        with pytest.raises(ValidationError, match="internal states"):
            validate_process(b.build())

    def test_pure_internal_state_allowed(self):
        b = ProcessBuilder.home("h")
        b.state("a", inp("m1", sender=AnySender(), to="i"))
        b.state("i", tau("decide", to="a"))
        assert validate_process(b.build())


class TestLivenessShapeChecks:
    def test_terminal_state_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="dead"))
        b.state("dead")
        with pytest.raises(ValidationError, match="terminal"):
            validate_process(b.build())

    def test_internal_only_cycle_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("go", to="b"))
        b.state("b", tau("back", to="a"))
        with pytest.raises(ValidationError, match="internal-state cycle"):
            validate_process(b.build())

    def test_internal_self_loop_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("spin", to="a"))
        with pytest.raises(ValidationError, match="internal-state cycle"):
            validate_process(b.build())

    def test_cycle_through_communication_state_allowed(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("go", to="b"))
        b.state("b", out("m", to="a"))
        assert validate_process(b.build())


class TestErrorAggregation:
    def test_all_violations_reported(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="dead"))
        b.state("dead")
        problems = collect_violations(
            protocol("p", simple_home(), b.build()))
        assert len(problems) >= 2
        joined = "\n".join(problems)
        assert "terminal" in joined and "single rendezvous" in joined
