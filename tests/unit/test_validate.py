"""Unit tests for the paper's syntactic restrictions (repro.csp.validate)."""

import pytest

from repro.csp.ast import AnySender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.csp.validate import (
    collect_violations,
    validate_process,
    validate_protocol,
)
from repro.errors import ValidationError


def simple_home():
    b = ProcessBuilder.home("h")
    b.state("a", inp("m", sender=AnySender(), to="a"))
    return b.build()


def simple_remote():
    b = ProcessBuilder.remote("r")
    b.state("a", out("m", to="a"))
    return b.build()


class TestWellFormedProtocolsPass:
    def test_canonical_protocols(self, migratory, invalidate, msi):
        for proto in (migratory, invalidate, msi):
            assert validate_protocol(proto) is proto
            assert collect_violations(proto) == []

    def test_minimal_protocol(self):
        assert collect_violations(
            protocol("p", simple_home(), simple_remote())) == []


class TestRemoteRestrictions:
    def test_two_outputs_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="a"))
        with pytest.raises(ValidationError, match="single rendezvous"):
            validate_process(b.build())

    def test_output_mixed_with_input_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), inp("m2", to="a"))
        with pytest.raises(ValidationError, match="output non-determinism"):
            validate_process(b.build())

    def test_output_mixed_with_tau_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), tau("t", to="a"))
        with pytest.raises(ValidationError):
            validate_process(b.build())

    def test_passive_state_with_taus_allowed(self):
        # Figure 1(c): inputs plus autonomous decisions
        b = ProcessBuilder.remote("r")
        b.state("a", inp("m1", to="a"), inp("m2", to="b"), tau("evict", to="b"))
        b.state("b", out("m3", to="a"))
        assert validate_process(b.build())


class TestHomeRestrictions:
    def test_generalized_guards_allowed(self):
        b = ProcessBuilder.home("h", j=0)
        b.state("a",
                inp("m1", sender=AnySender(), to="a"),
                out("m2", target=VarTarget("j"), to="a"))
        assert validate_process(b.build())

    def test_tau_in_communication_state_rejected(self):
        b = ProcessBuilder.home("h")
        b.state("a", inp("m1", sender=AnySender(), to="a"), tau("t", to="a"))
        with pytest.raises(ValidationError, match="internal states"):
            validate_process(b.build())

    def test_pure_internal_state_allowed(self):
        b = ProcessBuilder.home("h")
        b.state("a", inp("m1", sender=AnySender(), to="i"))
        b.state("i", tau("decide", to="a"))
        assert validate_process(b.build())


class TestLivenessShapeChecks:
    def test_terminal_state_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="dead"))
        b.state("dead")
        with pytest.raises(ValidationError, match="terminal"):
            validate_process(b.build())

    def test_internal_only_cycle_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("go", to="b"))
        b.state("b", tau("back", to="a"))
        with pytest.raises(ValidationError, match="internal-state cycle"):
            validate_process(b.build())

    def test_internal_self_loop_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("spin", to="a"))
        with pytest.raises(ValidationError, match="internal-state cycle"):
            validate_process(b.build())

    def test_cycle_through_communication_state_allowed(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("go", to="b"))
        b.state("b", out("m", to="a"))
        assert validate_process(b.build())


class TestErrorAggregation:
    def test_all_violations_reported(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="dead"))
        b.state("dead")
        problems = collect_violations(
            protocol("p", simple_home(), b.build()))
        assert len(problems) >= 2
        joined = "\n".join(problems)
        assert "terminal" in joined and "single rendezvous" in joined


class TestLegacyStringCompatibility:
    """collect_violations is now a façade over repro.analysis; its output
    must stay byte-identical for existing callers."""

    def test_exact_strings_and_order(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="dead"))
        b.state("dead")
        assert collect_violations(protocol("p", simple_home(), b.build())) == [
            "r.a: remote state offers 2 output guards; a remote may be the "
            "active participant of only a single rendezvous",
            "r.dead: terminal state (no guards); processes must always "
            "eventually offer a rendezvous",
        ]

    def test_internal_cycle_string(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("go", to="b"))
        b.state("b", tau("back", to="a"))
        problems = [p for p in collect_violations(
            protocol("p", simple_home(), b.build()))
            if "cycle" in p]
        assert problems == [
            "r: internal-state cycle a -> b -> a; the process could avoid "
            "communication forever"]

    def test_validation_error_lists_all_problems(self):
        b = ProcessBuilder.remote("r")
        b.state("a", out("m1", to="a"), out("m2", to="dead"))
        b.state("dead")
        with pytest.raises(ValidationError) as excinfo:
            validate_protocol(protocol("p", simple_home(), b.build()))
        message = str(excinfo.value)
        assert message.startswith(
            "protocol 'p' violates the paper's syntactic restrictions:")
        assert message.count("\n  - ") == 2


class TestAddressingRestrictions:
    """The builder refuses bad addressing up front, so these violations
    need raw-AST construction; the validator must still catch them."""

    def _process(self, kind, guards):
        from repro.csp.ast import ProcessDef, StateDef
        return ProcessDef(
            name="p", kind=kind,
            states={"a": StateDef(name="a", guards=tuple(guards))},
            initial_state="a")

    def test_home_output_without_target(self):
        from repro.csp.ast import Output, ProcessKind
        process = self._process(ProcessKind.HOME,
                                [Output(msg="m", to="a")])
        with pytest.raises(ValidationError,
                           match="lacks a remote target"):
            validate_process(process)

    def test_home_input_without_sender(self):
        from repro.csp.ast import Input, ProcessKind
        process = self._process(ProcessKind.HOME,
                                [Input(msg="m", to="a")])
        with pytest.raises(ValidationError,
                           match="lacks a sender pattern"):
            validate_process(process)

    def test_remote_output_with_target(self):
        from repro.csp.ast import ConstTarget, Output, ProcessKind
        process = self._process(
            ProcessKind.REMOTE,
            [Output(msg="m", to="a", target=ConstTarget(0))])
        with pytest.raises(ValidationError, match="star topology"):
            validate_process(process)

    def test_remote_input_with_sender(self):
        from repro.csp.ast import ProcessKind
        process = self._process(
            ProcessKind.REMOTE,
            [inp("m", sender=AnySender(), to="a")])
        with pytest.raises(ValidationError, match="star topology"):
            validate_process(process)

    def test_diagnostics_use_registered_codes(self):
        from repro.analysis.restrictions import process_restrictions
        from repro.csp.ast import Input, Output, ProcessKind
        process = self._process(
            ProcessKind.HOME,
            [Output(msg="m", to="a"), Input(msg="m2", to="a")])
        codes = [d.code for d in process_restrictions(process)]
        assert codes == ["P2402", "P2403"]
