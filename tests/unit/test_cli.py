"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "mosi"])

    def test_defaults(self):
        args = build_parser().parse_args(["verify", "migratory"])
        assert args.nodes == 2 and args.buffer == 2
        assert args.level == "rendezvous"


class TestVerifyCommand:
    def test_rendezvous_ok(self, capsys):
        assert main(["verify", "migratory", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_async_ok(self, capsys):
        assert main(["verify", "migratory", "--level", "async",
                     "-n", "2"]) == 0

    def test_budget_unfinished_nonzero_exit(self, capsys):
        code = main(["verify", "invalidate", "--level", "async",
                     "-n", "3", "--budget", "500"])
        assert code == 1
        assert "UNFINISHED" in capsys.readouterr().out

    def test_progress_flag(self, capsys):
        assert main(["verify", "migratory", "-n", "2", "--progress"]) == 0
        assert "PROGRESS GUARANTEED" in capsys.readouterr().out


class TestRefineCommand:
    def test_plain(self, capsys):
        assert main(["refine", "migratory"]) == 0
        out = capsys.readouterr().out
        assert "refined migratory-home" in out
        assert "fused: req/gr" in out

    def test_figures(self, capsys):
        assert main(["refine", "migratory", "--figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 5" in out

    def test_dot(self, capsys):
        assert main(["refine", "invalidate", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_no_reqreply(self, capsys):
        assert main(["refine", "migratory", "--no-reqreply"]) == 0
        assert "fused" not in capsys.readouterr().out.splitlines()[0]


class TestSimulateCommand:
    def test_synthetic(self, capsys):
        assert main(["simulate", "migratory", "-n", "3",
                     "--until", "2000"]) == 0
        out = capsys.readouterr().out
        assert "rendezvous completed" in out

    def test_hand_variant(self, capsys):
        assert main(["simulate", "migratory", "--hand", "-n", "3",
                     "--until", "2000", "--workload", "hot"]) == 0

    def test_hand_requires_migratory(self):
        with pytest.raises(SystemExit):
            main(["simulate", "invalidate", "--hand", "--until", "100"])


class TestSoundnessCommand:
    def test_ok(self, capsys):
        assert main(["soundness", "migratory", "-n", "2"]) == 0
        assert "WEAK SIMULATION HOLDS" in capsys.readouterr().out


class TestPoolCommand:
    def test_pool_runs(self, capsys):
        assert main(["pool", "migratory", "--lines", "4", "-n", "3",
                     "--until", "1000"]) == 0
        out = capsys.readouterr().out
        assert "shared pool" in out


class TestMscOption:
    def test_simulate_with_msc(self, capsys):
        assert main(["simulate", "migratory", "-n", "2", "--until", "300",
                     "--msc", "6"]) == 0
        out = capsys.readouterr().out
        assert "time" in out and "r0" in out


class TestCheckCommand:
    def test_rendezvous_ok(self, capsys):
        assert main(["check", "migratory", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "34 states" in out and "[complete]" in out

    def test_fingerprint_store_reported(self, capsys):
        assert main(["check", "migratory", "-n", "2",
                     "--store", "fingerprint"]) == 0
        assert "fingerprint store" in capsys.readouterr().out

    def test_budget_unfinished_nonzero_exit(self, capsys):
        code = main(["check", "migratory", "--level", "async",
                     "-n", "3", "--budget", "500"])
        assert code == 1
        assert "UNFINISHED (state budget 500 exceeded)" \
            in capsys.readouterr().out

    def test_levels_flag_renders_progress(self, capsys):
        assert main(["check", "migratory", "-n", "2", "--levels"]) == 0
        err = capsys.readouterr().err
        assert "exploring migratory-rendezvous-2" in err
        assert "level   0" in err and "done:" in err

    def test_profile_written(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["check", "migratory", "-n", "2",
                     "--profile", str(path)]) == 0
        assert f"profile written to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.profile/4"
        assert doc["result"]["completed"] is True
        assert sum(lvl["new_states"] for lvl in doc["levels"]) + 1 \
            == doc["result"]["n_states"]
        assert sum(lvl["candidates"] for lvl in doc["levels"]) \
            == doc["result"]["n_transitions"]

    def test_parallel_matches_sequential(self, tmp_path, capsys):
        seq = tmp_path / "seq.json"
        par = tmp_path / "par.json"
        assert main(["check", "migratory", "-n", "3",
                     "--profile", str(seq)]) == 0
        assert main(["check", "migratory", "-n", "3", "--parallel",
                     "--workers", "2", "--profile", str(par)]) == 0
        seq_doc = json.loads(seq.read_text())
        par_doc = json.loads(par.read_text())
        for key in ("n_states", "n_transitions", "deadlocks", "stop_reason"):
            assert par_doc["result"][key] == seq_doc["result"][key]
        assert par_doc["run"]["workers"] == 2

    def test_unknown_store_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "migratory",
                                       "--store", "bloom"])


class TestPorFlag:
    def test_check_por_runs(self, capsys):
        assert main(["check", "migratory", "--level", "async",
                     "-n", "2", "--por"]) == 0
        out = capsys.readouterr().out
        assert "reductions: por" in out and "pruned" in out

    def test_verify_por_runs(self, capsys):
        assert main(["verify", "migratory", "--level", "async",
                     "-n", "2", "--por"]) == 0
        assert "complete" in capsys.readouterr().out

    @pytest.mark.parametrize("command", ["check", "verify"])
    def test_por_rejects_rendezvous_level(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "migratory", "-n", "2", "--por"])
        assert "rendezvous level has none" in str(excinfo.value)

    def test_profile_records_reductions(self, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["check", "migratory", "--level", "async", "-n", "2",
                     "--symmetry", "--por", "--profile", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["run"]["reductions"] == ["por", "symmetry"]
        assert doc["result"]["reductions"] == ["por", "symmetry"]
        assert doc["result"]["n_enabled"] >= doc["result"]["n_transitions"]
        assert any(lvl["reduction_ratio"] > 0 for lvl in doc["levels"])

    def test_por_shrinks_check_counts(self, capsys):
        assert main(["check", "invalidate", "--level", "async",
                     "-n", "2"]) == 0
        full_out = capsys.readouterr().out
        assert main(["check", "invalidate", "--level", "async",
                     "-n", "2", "--por"]) == 0
        por_out = capsys.readouterr().out
        full_states = int(full_out.split(" states")[0].rsplit()[-1])
        por_states = int(por_out.split(" states")[0].rsplit()[-1])
        assert por_states < full_states


class TestEngineFlag:
    def test_check_compiled_matches_interpreted(self, capsys):
        counts = {}
        for engine in ("interpreted", "compiled"):
            assert main(["check", "migratory", "--level", "async",
                         "-n", "2", "--engine", engine]) == 0
            out = capsys.readouterr().out
            counts[engine] = out.split(" states")[0].rsplit()[-1]
        assert counts["interpreted"] == counts["compiled"]

    def test_verify_compiled_runs(self, capsys):
        assert main(["verify", "migratory", "--level", "async",
                     "-n", "2", "--engine", "compiled"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_profile_records_engine(self, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["check", "migratory", "--level", "async", "-n", "2",
                     "--engine", "compiled", "--profile", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["run"]["engine"] == "compiled"

    @pytest.mark.parametrize("command", ["check", "verify"])
    def test_compiled_rejects_rendezvous_level(self, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "migratory", "-n", "2",
                  "--engine", "compiled"])
        assert "rendezvous level has only the interpreted engine" \
            in str(excinfo.value)

    def test_paramverify_rejects_compiled(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["paramverify", "migratory", "--engine", "compiled"])
        assert "compiled" in str(excinfo.value)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "migratory",
                                       "--engine", "jit"])


class TestTable3Command:
    def test_small_budget_renders(self, capsys):
        assert main(["table3", "--budget", "2000", "--timeout", "20"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Migratory" in out and "Invalidate" in out
        assert "Unfinished" in out  # the tiny budget forces some cells
