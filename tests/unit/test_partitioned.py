"""Unit tests for the owner-computes driver (repro.check.partitioned).

The parity matrix in :mod:`tests.property.test_reduction_matrix` pins
the driver against the sequential oracle across reductions and engines;
here we cover the driver-specific machinery: partition statistics,
budget truncation, spill wiring, start methods and input validation.
"""

import pytest

from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system
from repro.check.partitioned import explore_partitioned
from repro.check.store import make_partitioned_store

SPEC = SystemSpec("migratory", "async", 2)


def counts(result):
    return (result.n_states, result.n_transitions, result.n_enabled,
            result.deadlock_count, result.completed, result.stop_reason)


@pytest.fixture(scope="module")
def sequential():
    return explore(build_system(SPEC), name="oracle")


class TestParity:
    @pytest.mark.parametrize("store", ["exact", "fingerprint"])
    def test_counts_match_sequential(self, sequential, store):
        result = explore_partitioned(SPEC, partitions=3, store=store)
        assert counts(result) == counts(sequential)
        assert result.store == store

    def test_spawn_start_method(self, sequential):
        result = explore_partitioned(SPEC, partitions=2,
                                     start_method="spawn")
        assert counts(result) == counts(sequential)

    @pytest.mark.parametrize("budget", [1, 7, 50, 113])
    def test_truncation_hits_the_same_wall(self, budget):
        seq = explore(build_system(SPEC), name="oracle", max_states=budget)
        part = explore_partitioned(SPEC, partitions=3, max_states=budget)
        assert counts(part) == counts(seq)
        if not seq.completed:
            assert part.stop_reason == f"state budget {budget} exceeded"

    def test_single_partition_runs_in_process(self, sequential):
        # partitions=1 needs no worker fleet: the driver degenerates to
        # the sequential explorer over a partitioned store
        result = explore_partitioned(SPEC, partitions=1)
        assert counts(result) == counts(sequential)
        assert len(result.partition_stats) == 1


class TestStatistics:
    def test_partition_rows_cover_every_partition(self, sequential):
        result = explore_partitioned(SPEC, partitions=3)
        rows = result.partition_stats
        assert [row["partition"] for row in rows] == [0, 1, 2]
        assert sum(row["owned"] for row in rows) == sequential.n_states
        for row in rows:
            assert row["probes"] >= row["owned"]

    def test_owner_computes_rows_carry_exchange_counters(self):
        result = explore_partitioned(SPEC, partitions=2)
        for row in result.partition_stats:
            assert "exchanged_batches" in row
            assert "exchanged_states" in row
            assert "received_candidates" in row

    def test_spill_wiring(self, tmp_path):
        result = explore_partitioned(
            SPEC, partitions=2, store="fingerprint",
            spill_dir=tmp_path, spill_threshold=8)
        assert result.spill_bytes > 0
        assert any(row["spill_merges"] for row in result.partition_stats)
        spilled = list(tmp_path.rglob("*.spill"))
        assert spilled, "spill files must land under spill_dir"


class TestMemoryBudget:
    def test_memory_limit_yields_wellformed_unfinished(self):
        result = explore_partitioned(SPEC, partitions=2, max_bytes=4096)
        assert not result.completed
        assert "memory budget" in result.stop_reason
        assert result.n_states > 0  # truncated, not aborted

    def test_sequential_memory_limit_matches_shape(self):
        result = explore(build_system(SPEC), name="x", max_bytes=1024)
        assert not result.completed
        assert "memory budget" in result.stop_reason


class TestValidation:
    def test_unknown_store(self):
        with pytest.raises(ValueError, match="unknown store"):
            explore_partitioned(SPEC, partitions=2, store="bloom")

    def test_exact_rejects_spill_dir(self, tmp_path):
        with pytest.raises(ValueError, match="spill"):
            explore_partitioned(SPEC, partitions=2, store="exact",
                                spill_dir=tmp_path)


class TestInProcessPartitionedStore:
    """`explore(store=make_partitioned_store(...))`: the sequential
    driver over a sharded store — the single-CPU configuration."""

    def test_counts_match_plain_fingerprint(self, tmp_path):
        plain = explore(build_system(SPEC), name="x", store="fingerprint")
        sharded = explore(
            build_system(SPEC), name="x",
            store=make_partitioned_store("fingerprint", 4,
                                         spill_dir=tmp_path,
                                         spill_threshold=16))
        assert counts(sharded) == counts(plain)
        assert len(sharded.partition_stats) == 4
        assert sharded.spill_bytes > 0

    def test_exact_partitioned_store_supports_traces(self, sequential):
        result = explore(build_system(SPEC), name="x",
                         store=make_partitioned_store("exact", 2))
        assert counts(result) == counts(sequential)
