"""Unit tests for the figure renderers (repro.viz)."""

import pytest

from repro.viz import (
    process_ascii,
    process_dot,
    protocol_summary,
    refined_ascii,
    refined_dot,
)
from repro.viz.dot import reply_destination


class TestProcessDot:
    def test_valid_dot_shape(self, migratory):
        dot = process_dot(migratory.home)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count('"F"') >= 2  # node decl + initial edge

    def test_figure2_edges_present(self, migratory):
        dot = process_dot(migratory.home)
        assert 'label="r(i)?req"' in dot
        assert 'label="r(o)!inv"' in dot
        assert 'label="r(j)!gr"' in dot

    def test_figure3_tau_dashed(self, migratory):
        dot = process_dot(migratory.remote)
        assert "τ:evict" in dot
        assert "style=dashed" in dot

    def test_title_override(self, migratory):
        assert process_dot(migratory.home, title="Fig 2").startswith(
            'digraph "Fig 2"')


class TestRefinedDot:
    def test_transient_states_dotted(self, migratory_refined):
        dot = refined_dot(migratory_refined, "home")
        assert "I1·inv" in dot
        assert "style=dotted" in dot

    def test_figure4_implicit_nack_edge(self, migratory_refined):
        dot = refined_dot(migratory_refined, "home")
        assert "[nack]" in dot
        assert "r(x)??msg/nack" in dot

    def test_figure5_ignore_self_loop(self, migratory_refined):
        dot = refined_dot(migratory_refined, "remote")
        assert "h??*" in dot
        assert "retransmit" in dot

    def test_fused_reply_lands_past_intermediate(self, migratory_refined):
        """The inv transient's ??ID edge must go to I3, not I2."""
        home = migratory_refined.protocol.home
        inv_guard = home.state("I1").outputs[0]
        assert reply_destination(home, inv_guard, "ID") == "I3"
        dot = refined_dot(migratory_refined, "home")
        assert '"I1·inv" -> "I3"' in dot

    def test_plain_refinement_has_ack_edges(self, migratory_refined_plain):
        dot = refined_dot(migratory_refined_plain, "remote")
        assert "??ack" in dot
        assert "REPL" not in dot

    def test_bad_side_rejected(self, migratory_refined):
        with pytest.raises(ValueError):
            refined_dot(migratory_refined, "sideways")


class TestAscii:
    def test_process_ascii_lists_all_states(self, migratory):
        text = process_ascii(migratory.home)
        for name in migratory.home.states:
            assert f"  {name} " in text or f"  {name}\n" in text

    def test_process_ascii_shows_vars(self, migratory):
        assert "o=None" in process_ascii(migratory.home)

    def test_refined_ascii_marks_replies(self, migratory_refined):
        text = refined_ascii(migratory_refined, "home")
        assert "!!gr (reply)" in text
        assert "(dotted)" in text

    def test_refined_ascii_hand_variant(self):
        from repro.protocols.handwritten import handwritten_migratory
        text = refined_ascii(handwritten_migratory(), "remote")
        assert "!!LR (no ack)" in text

    def test_summary_counts_transients(self, migratory_refined):
        text = protocol_summary(migratory_refined)
        assert "home 6 states (+3 transient)" in text
        assert "remote 5 states (+3 transient)" in text
