"""Unit tests for the workload generators (repro.sim.workload)."""

import pytest

from repro.sim.policy import AccessClass, GatedOption, SEND, TAU
from repro.sim.workload import (
    HotLineWorkload,
    SyntheticWorkload,
    TraceWorkload,
)


def option(access_class, remote=0, kind=TAU, state="I", label="x"):
    return GatedOption(remote=remote, kind=kind, state=state,
                       label=None if kind == SEND else label,
                       access_class=access_class)


ACQ = option(AccessClass.ACQUIRE)
ACQ_R = option(AccessClass.ACQUIRE_READ, label="wantR")
ACQ_W = option(AccessClass.ACQUIRE_WRITE, label="wantW")
UP = option(AccessClass.UPGRADE, state="S", label="wantUp")
EVICT = option(AccessClass.EVICT, state="V", label="evict")


class TestSyntheticWorkload:
    def test_acquire_chosen_with_positive_delay(self):
        workload = SyntheticWorkload(seed=1)
        delay, chosen = workload.choose(0.0, [ACQ])
        assert delay >= 0.0
        assert chosen is ACQ

    def test_read_write_mix_respected(self):
        always_write = SyntheticWorkload(seed=2, write_fraction=1.0,
                                         upgrade_fraction=0.0)
        for _ in range(20):
            _d, chosen = always_write.choose(0.0, [ACQ_R, ACQ_W])
            assert chosen is ACQ_W
        always_read = SyntheticWorkload(seed=3, write_fraction=0.0)
        for _ in range(20):
            _d, chosen = always_read.choose(0.0, [ACQ_R, ACQ_W])
            assert chosen is ACQ_R

    def test_eviction_offered_alone_taken(self):
        workload = SyntheticWorkload(seed=4)
        delay, chosen = workload.choose(0.0, [EVICT])
        assert chosen is EVICT

    def test_upgrade_preferred_when_writing(self):
        workload = SyntheticWorkload(seed=5, write_fraction=1.0,
                                     upgrade_fraction=1.0)
        _d, chosen = workload.choose(0.0, [UP, EVICT])
        assert chosen is UP

    def test_no_options_none(self):
        assert SyntheticWorkload(seed=6).choose(0.0, []) is None

    def test_deterministic_given_seed(self):
        a = SyntheticWorkload(seed=7)
        b = SyntheticWorkload(seed=7)
        for _ in range(10):
            assert a.choose(0.0, [ACQ_R, ACQ_W, EVICT]) == \
                b.choose(0.0, [ACQ_R, ACQ_W, EVICT])


class TestHotLineWorkload:
    def test_always_reacquires(self):
        workload = HotLineWorkload(seed=1)
        for _ in range(10):
            result = workload.choose(0.0, [ACQ])
            assert result is not None

    def test_never_evicts(self):
        workload = HotLineWorkload(seed=2)
        assert workload.choose(0.0, [EVICT]) is None

    def test_write_fraction(self):
        reader = HotLineWorkload(seed=3, write_fraction=0.0)
        _d, chosen = reader.choose(0.0, [ACQ_R, ACQ_W])
        assert chosen is ACQ_R


class TestTraceWorkload:
    def test_entries_fire_in_order_per_remote(self):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE),
                                  (50.0, 0, AccessClass.EVICT)])
        delay, chosen = workload.choose(0.0, [ACQ])
        assert delay == pytest.approx(10.0)
        assert chosen.access_class == AccessClass.ACQUIRE
        delay, chosen = workload.choose(30.0, [EVICT])
        assert delay == pytest.approx(20.0)

    def test_past_times_fire_immediately(self):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        delay, _chosen = workload.choose(100.0, [ACQ])
        assert delay == 0.0

    def test_exhausted_schedule_returns_none(self):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        workload.choose(0.0, [ACQ])
        assert workload.choose(20.0, [ACQ]) is None

    def test_non_matching_option_not_consumed(self):
        workload = TraceWorkload([(10.0, 0, AccessClass.EVICT)])
        assert workload.choose(0.0, [ACQ]) is None
        # the entry is still pending for when the evict option appears
        delay, chosen = workload.choose(0.0, [EVICT])
        assert chosen is EVICT

    def test_per_remote_schedules_independent(self):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE),
                                  (20.0, 1, AccessClass.ACQUIRE)])
        d0, _ = workload.choose(0.0, [option(AccessClass.ACQUIRE, remote=0)])
        d1, _ = workload.choose(0.0, [option(AccessClass.ACQUIRE, remote=1)])
        assert d0 == pytest.approx(10.0)
        assert d1 == pytest.approx(20.0)
