"""Unit tests for the CI benchmark diff gate (benchmarks/compare_bench.py).

The script guards the committed ``BENCH_explore.json`` against silent
exploration-engine regressions; these tests pin what counts as a
failure (deterministic count drift beyond tolerance, missing rows,
budget mismatch) and what is informational only (timing, store bytes).
"""

import copy
import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).parent.parent.parent / "benchmarks" / "compare_bench.py")
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def make_doc():
    run = {
        "protocol": "migratory", "n": 3, "config": "por",
        "n_states": 794, "n_transitions": 1806, "n_enabled": 2058,
        "depth": 34, "completed": True, "transition_pruning": 0.1224,
        "states_per_sec": 2000, "approx_bytes": 100_000, "seconds": 0.4,
    }
    return {
        "schema": "repro.bench_explore/1",
        "budget": 4000,
        "runs": [run],
        "headline": {
            "runs": [dict(run)],
            "reductions": {"migratory_n3_por_vs_full": 0.508},
        },
    }


class TestCompare:
    def test_identical_passes(self):
        doc = make_doc()
        errors, notes = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == [] and notes == []

    def test_count_drift_beyond_tolerance_fails(self):
        base, cand = make_doc(), make_doc()
        cand["runs"][0]["n_states"] = int(794 * 1.5)
        errors, _ = compare_bench.compare(base, cand)
        assert any("n_states" in e for e in errors)

    def test_small_drift_within_tolerance_passes(self):
        base, cand = make_doc(), make_doc()
        cand["runs"][0]["n_states"] = int(794 * 1.1)
        cand["runs"][0]["n_transitions"] = int(1806 * 0.9)
        errors, _ = compare_bench.compare(base, cand)
        assert errors == []

    def test_timing_and_bytes_never_fail(self):
        base, cand = make_doc(), make_doc()
        cand["runs"][0]["states_per_sec"] = 1
        cand["runs"][0]["approx_bytes"] = 10
        cand["runs"][0]["seconds"] = 900.0
        errors, notes = compare_bench.compare(base, cand)
        assert errors == []
        assert notes  # reported, not fatal

    def test_completion_flip_fails(self):
        base, cand = make_doc(), make_doc()
        cand["headline"]["runs"][0]["completed"] = False
        errors, _ = compare_bench.compare(base, cand)
        assert any("completed" in e for e in errors)

    def test_missing_row_fails(self):
        base, cand = make_doc(), make_doc()
        cand["runs"] = []
        errors, _ = compare_bench.compare(base, cand)
        assert any("row sets differ" in e for e in errors)

    def test_budget_mismatch_fails_fast(self):
        base, cand = make_doc(), make_doc()
        cand["budget"] = 60000
        errors, _ = compare_bench.compare(base, cand)
        assert len(errors) == 1 and "budget" in errors[0]

    def test_reduction_ratio_drift_fails(self):
        base, cand = make_doc(), make_doc()
        cand["headline"]["reductions"]["migratory_n3_por_vs_full"] = 0.1
        errors, _ = compare_bench.compare(base, cand)
        assert any("reductions." in e for e in errors)

    def test_reduction_becoming_unavailable_fails(self):
        base, cand = make_doc(), make_doc()
        cand["headline"]["reductions"]["migratory_n3_por_vs_full"] = None
        errors, _ = compare_bench.compare(base, cand)
        assert any("reductions." in e for e in errors)


def make_doc_v2():
    """A /2 document: per-engine rows, identical counts, distinct timing."""
    interp = {
        "protocol": "migratory", "n": 3, "config": "por",
        "engine": "interpreted",
        "n_states": 794, "n_transitions": 1806, "n_enabled": 2058,
        "depth": 34, "completed": True, "transition_pruning": 0.1224,
        "states_per_sec": 2000, "approx_bytes": 100_000, "seconds": 0.4,
    }
    compiled = dict(interp, engine="compiled",
                    states_per_sec=8000, seconds=0.1)
    return {
        "schema": "repro.bench_explore/2",
        "budget": 4000,
        "runs": [interp, compiled],
        "headline": {
            "runs": [dict(interp), dict(compiled)],
            "reductions": {"migratory_n3_por_vs_full": 0.508},
        },
    }


class TestCrossEngine:
    """The /2 contract: engine rows are separate cells, but their
    deterministic fields must agree exactly within one document."""

    def test_identical_passes(self):
        doc = make_doc_v2()
        errors, notes = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == [] and notes == []

    def test_engine_rows_are_distinct_cells(self):
        base, cand = make_doc_v2(), make_doc_v2()
        cand["runs"] = [r for r in cand["runs"]
                        if r["engine"] == "interpreted"]
        errors, _ = compare_bench.compare(base, cand)
        assert any("row sets differ" in e for e in errors)

    def test_cross_engine_count_mismatch_fails_exactly(self):
        # +1 state is far inside the 25% drift tolerance, but across
        # engines the counts must be *exactly* equal
        base, cand = make_doc_v2(), make_doc_v2()
        cand["runs"][1]["n_states"] += 1
        errors, _ = compare_bench.compare(base, cand)
        assert any("differs across engines" in e for e in errors)

    def test_cross_engine_timing_may_differ(self):
        base, cand = make_doc_v2(), make_doc_v2()
        cand["runs"][1]["states_per_sec"] = 99_999
        cand["runs"][1]["seconds"] = 0.01
        errors, _ = compare_bench.compare(base, cand)
        assert errors == []

    def test_v1_rows_default_to_interpreted_engine(self):
        # a /1 baseline (no engine field) still compares row-for-row
        doc = make_doc()
        errors, _ = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == []


class TestMain:
    def test_cli_pass_and_fail(self, tmp_path, capsys):
        base, cand = make_doc(), make_doc()
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(cand))
        assert compare_bench.main([str(a), str(b)]) == 0
        assert "benchmark diff OK" in capsys.readouterr().out
        cand["runs"][0]["n_enabled"] = 99999
        b.write_text(json.dumps(cand))
        assert compare_bench.main([str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        base, cand = make_doc(), make_doc()
        cand["runs"][0]["n_states"] = int(794 * 1.4)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(cand))
        assert compare_bench.main([str(a), str(b)]) == 1
        assert compare_bench.main([str(a), str(b),
                                   "--tolerance", "0.5"]) == 0


def make_cutoff_doc():
    cell = {"n": 2, "n_states": 2042, "n_transitions": 6614,
            "deadlocks": 0, "completed": True, "verdict": "no-deadlock",
            "seconds": 0.5}
    return {
        "schema": "repro.bench_cutoff/1",
        "budget": 60000,
        "protocols": [{
            "protocol": "invalidate",
            "static_verdict": "deadlock-free-any-N",
            "discharged": True,
            "complete_cover": True,
            "n_flows": 10,
            "n_invariants": 16,
            "witness_states": 723,
            "exploration": [cell],
            "stabilizes_at": 2,
            "agreement": True,
        }],
    }


class TestCompareCutoff:
    def test_identical_passes(self):
        doc = make_cutoff_doc()
        errors, notes = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == [] and notes == []

    def test_verdict_flip_fails(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"][0]["static_verdict"] = "obligations"
        cand["protocols"][0]["discharged"] = False
        errors, _ = compare_bench.compare(base, cand)
        assert any("static_verdict" in e for e in errors)
        assert any("discharged" in e for e in errors)

    def test_stabilization_drift_fails(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"][0]["stabilizes_at"] = 3
        errors, _ = compare_bench.compare(base, cand)
        assert any("stabilizes_at" in e for e in errors)

    def test_exploration_count_drift_fails(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"][0]["exploration"][0]["n_states"] = 4000
        errors, _ = compare_bench.compare(base, cand)
        assert any("n_states" in e for e in errors)

    def test_new_deadlock_fails(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"][0]["exploration"][0].update(
            deadlocks=2, verdict="deadlock")
        errors, _ = compare_bench.compare(base, cand)
        assert any("deadlocks" in e for e in errors)
        assert any("verdict" in e for e in errors)

    def test_timing_is_informational(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"][0]["exploration"][0]["seconds"] = 300.0
        errors, notes = compare_bench.compare(base, cand)
        assert errors == [] and notes

    def test_missing_protocol_fails(self):
        base, cand = make_cutoff_doc(), make_cutoff_doc()
        cand["protocols"] = []
        errors, _ = compare_bench.compare(base, cand)
        assert any("row sets differ" in e for e in errors)

    def test_schema_mismatch_fails_fast(self):
        errors, _ = compare_bench.compare(make_doc(), make_cutoff_doc())
        assert len(errors) == 1 and "schema" in errors[0]

    def test_cli_accepts_cutoff_artifacts(self, tmp_path):
        doc = make_cutoff_doc()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(doc))
        b.write_text(json.dumps(doc))
        assert compare_bench.main([str(a), str(b)]) == 0


def make_param_doc():
    cell = {"n": 2, "n_states": 2387, "n_transitions": 7978,
            "violations": 0, "completed": True, "verdict": "coherent",
            "seconds": 0.3}
    return {
        "schema": "repro.bench_param/1",
        "budget": 120000,
        "protocols": [{
            "protocol": "invalidate",
            "static_verdict": "discharged",
            "discharged": True,
            "candidates": 11,
            "validated": 11,
            "n_lemmas": 0,
            "iterations": 1,
            "abstract_states": 6174,
            "exploration": [cell],
            "agreement": True,
        }],
    }


class TestCompareParam:
    def test_identical_passes(self):
        doc = make_param_doc()
        errors, notes = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == [] and notes == []

    def test_verdict_flip_fails(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["protocols"][0]["static_verdict"] = "inconclusive"
        cand["protocols"][0]["discharged"] = False
        errors, _ = compare_bench.compare(base, cand)
        assert any("static_verdict" in e for e in errors)
        assert any("discharged" in e for e in errors)

    def test_lemma_inventory_drift_fails(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["protocols"][0].update(n_lemmas=2, iterations=3)
        errors, _ = compare_bench.compare(base, cand)
        assert any("n_lemmas" in e for e in errors)
        assert any("iterations" in e for e in errors)

    def test_abstract_state_drift_fails_beyond_tolerance(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["protocols"][0]["abstract_states"] = 60000
        errors, _ = compare_bench.compare(base, cand)
        assert any("abstract_states" in e for e in errors)

    def test_new_violation_fails(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["protocols"][0]["exploration"][0].update(
            violations=1, verdict="violated")
        cand["protocols"][0]["agreement"] = False
        errors, _ = compare_bench.compare(base, cand)
        assert any("violations" in e for e in errors)
        assert any("verdict" in e for e in errors)
        assert any("agreement" in e for e in errors)

    def test_timing_is_informational(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["protocols"][0]["exploration"][0]["seconds"] = 300.0
        errors, notes = compare_bench.compare(base, cand)
        assert errors == [] and notes

    def test_budget_mismatch_fails_fast(self):
        base, cand = make_param_doc(), make_param_doc()
        cand["budget"] = 60000
        errors, _ = compare_bench.compare(base, cand)
        assert len(errors) == 1 and "budget" in errors[0]

    def test_schema_mismatch_fails_fast(self):
        errors, _ = compare_bench.compare(make_param_doc(),
                                          make_cutoff_doc())
        assert len(errors) == 1 and "schema" in errors[0]

    def test_cli_accepts_param_artifacts(self, tmp_path):
        doc = make_param_doc()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(doc))
        b.write_text(json.dumps(doc))
        assert compare_bench.main([str(a), str(b)]) == 0

    def test_committed_artifact_self_compares(self):
        path = Path(__file__).parent.parent.parent / "BENCH_param.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.bench_param/1"
        errors, _ = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == []
        # the committed artifact must show zero unsound cells
        for row in doc["protocols"]:
            assert row["agreement"], row["protocol"]
            assert row["discharged"], row["protocol"]


def make_profile_doc():
    level = {"level": 1, "frontier": 1, "expanded": 1, "candidates": 6,
             "new_states": 4, "n_states": 5, "n_transitions": 6,
             "deadlocks": 0, "collisions": 0, "enabled": 6,
             "approx_bytes": 1000, "spill_bytes": 0, "seconds": 0.1,
             "dedup_ratio": 0.33, "states_per_sec": 50.0,
             "reduction_ratio": 0.0}
    return {
        "schema": "repro.profile/4",
        "run": {"name": "m", "store": "fingerprint", "workers": 1,
                "max_states": None, "max_seconds": None, "max_bytes": None,
                "reductions": [], "engine": "interpreted", "partitions": 1},
        "levels": [level],
        "partitions": [],
        "result": {"system": "m", "store": "fingerprint", "n_states": 5,
                   "n_transitions": 6, "n_enabled": 6, "reductions": [],
                   "deadlocks": 0, "fingerprint_collisions": 0,
                   "seconds": 0.2, "completed": True, "stop_reason": None,
                   "approx_bytes": 1000, "spill_bytes": 0,
                   "approx_bytes_detail": None},
    }


class TestCompareProfiles:
    """The cross-driver gate: a partitioned profile must carry exactly
    the sequential profile's counts, level by level."""

    def test_identical_passes(self):
        doc = make_profile_doc()
        errors, notes = compare_bench.compare(doc, copy.deepcopy(doc))
        assert errors == [] and notes == []

    def test_one_state_off_fails(self):
        # no 25% tolerance here: a single extra state is a driver bug
        base, cand = make_profile_doc(), make_profile_doc()
        cand["result"]["n_states"] += 1
        errors, _ = compare_bench.compare(base, cand)
        assert any("result.n_states" in e for e in errors)

    def test_per_level_count_mismatch_fails(self):
        base, cand = make_profile_doc(), make_profile_doc()
        cand["levels"][0]["new_states"] += 1
        errors, _ = compare_bench.compare(base, cand)
        assert any("new_states" in e for e in errors)

    def test_depth_mismatch_fails(self):
        base, cand = make_profile_doc(), make_profile_doc()
        cand["levels"].append(dict(cand["levels"][0], level=2))
        errors, _ = compare_bench.compare(base, cand)
        assert any("BFS depth" in e for e in errors)

    def test_stop_reason_mismatch_fails(self):
        base, cand = make_profile_doc(), make_profile_doc()
        cand["result"]["completed"] = False
        cand["result"]["stop_reason"] = "state budget 5 exceeded"
        errors, _ = compare_bench.compare(base, cand)
        assert any("completed" in e for e in errors)
        assert any("stop_reason" in e for e in errors)

    def test_layout_and_timing_are_informational(self):
        base, cand = make_profile_doc(), make_profile_doc()
        cand["run"].update(workers=4, partitions=4)
        cand["levels"][0].update(seconds=9.0, approx_bytes=5,
                                 spill_bytes=4096)
        cand["result"].update(seconds=9.5, approx_bytes=5,
                              spill_bytes=4096)
        cand["partitions"] = [{"partition": 0, "owned": 5}]
        errors, notes = compare_bench.compare(base, cand)
        assert errors == []
        assert notes  # layout drift reported, never fatal

    def test_schema_versions_may_differ_between_profiles(self):
        # a /3 sequential baseline still gates a /4 partitioned run
        base, cand = make_profile_doc(), make_profile_doc()
        base["schema"] = "repro.profile/3"
        errors, _ = compare_bench.compare(base, cand)
        assert errors == []

    def test_profile_vs_bench_doc_fails_fast(self):
        errors, _ = compare_bench.compare(make_profile_doc(), make_doc())
        assert len(errors) == 1 and "schema" in errors[0]

    def test_cli_accepts_profiles(self, tmp_path):
        doc = make_profile_doc()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(doc))
        b.write_text(json.dumps(doc))
        assert compare_bench.main([str(a), str(b)]) == 0
