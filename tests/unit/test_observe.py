"""Unit tests for run observability (repro.check.observe)."""

import io
import json

from repro.check.explorer import explore
from repro.check.observe import (
    PROFILE_SCHEMA,
    JsonProfileWriter,
    LevelEvent,
    MultiObserver,
    ProgressRenderer,
    RunInfo,
)


class ChainSystem:
    def __init__(self, n, loop=False):
        self.n = n
        self.loop = loop

    def initial_state(self):
        return 0

    def successors(self, state):
        if state < self.n:
            return [(("step", state), state + 1)]
        return [(("loop", state), 0)] if self.loop else []


class Recorder:
    def __init__(self):
        self.runs, self.levels, self.results = [], [], []

    def on_start(self, run):
        self.runs.append(run)

    def on_level(self, event):
        self.levels.append(event)

    def on_finish(self, result):
        self.results.append(result)


class TestEventStream:
    def test_level_events_cover_the_run(self):
        rec = Recorder()
        result = explore(ChainSystem(9, loop=True), name="chain",
                         observer=rec)
        assert [r.name for r in rec.runs] == ["chain"]
        assert rec.results == [result]
        # a 10-state cycle explored from 0: one state per level
        assert len(rec.levels) == 10
        assert sum(e.new_states for e in rec.levels) + 1 == result.n_states
        assert sum(e.candidates for e in rec.levels) == result.n_transitions
        assert rec.levels[-1].n_states == result.n_states
        assert [e.level for e in rec.levels] == list(range(10))

    def test_truncated_run_reports_partial_level(self):
        rec = Recorder()
        result = explore(ChainSystem(1000, loop=True), max_states=5,
                         observer=rec)
        assert not result.completed
        last = rec.levels[-1]
        assert last.expanded < last.frontier or last.expanded == 0

    def test_dedup_ratio_and_rates(self):
        event = LevelEvent(level=1, frontier=4, expanded=4, candidates=10,
                           new_states=4, n_states=8, n_transitions=20,
                           deadlocks=0, collisions=0, approx_bytes=100,
                           seconds=2.0)
        assert event.dedup_ratio == 0.6
        assert event.states_per_sec == 4.0
        empty = LevelEvent(level=0, frontier=1, expanded=1, candidates=0,
                           new_states=0, n_states=1, n_transitions=0,
                           deadlocks=0, collisions=0, approx_bytes=0,
                           seconds=0.0)
        assert empty.dedup_ratio == 0.0
        assert empty.states_per_sec == 0.0


class TestProgressRenderer:
    def test_renders_start_levels_finish(self):
        buf = io.StringIO()
        explore(ChainSystem(5, loop=True), name="tiny",
                observer=ProgressRenderer(buf), max_states=3)
        text = buf.getvalue()
        assert "exploring tiny" in text
        assert "max_states=3" in text
        assert "level   0" in text
        assert "UNFINISHED" in text

    def test_mentions_collisions_when_present(self):
        buf = io.StringIO()
        renderer = ProgressRenderer(buf)
        renderer.on_level(LevelEvent(level=0, frontier=1, expanded=1,
                                     candidates=2, new_states=1, n_states=2,
                                     n_transitions=2, deadlocks=0,
                                     collisions=3, approx_bytes=64,
                                     seconds=0.5))
        assert "collisions 3" in buf.getvalue()


class TestJsonProfileWriter:
    def test_writes_schema_levels_and_result(self, tmp_path):
        path = tmp_path / "profile.json"
        result = explore(ChainSystem(9, loop=True), name="chain",
                         observer=JsonProfileWriter(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["run"]["name"] == "chain"
        assert doc["run"]["store"] == "exact"
        assert len(doc["levels"]) == 10
        assert {"level", "frontier", "expanded", "candidates", "new_states",
                "n_states", "n_transitions", "deadlocks", "collisions",
                "approx_bytes", "seconds", "dedup_ratio",
                "states_per_sec"} <= set(doc["levels"][0])
        assert doc["result"]["n_states"] == result.n_states
        assert doc["result"]["completed"] is True
        assert doc["result"]["fingerprint_collisions"] == 0

    def test_fingerprint_store_recorded(self, tmp_path):
        path = tmp_path / "profile.json"
        explore(ChainSystem(5, loop=True), store="fingerprint",
                observer=JsonProfileWriter(path))
        doc = json.loads(path.read_text())
        assert doc["run"]["store"] == "fingerprint"
        assert doc["result"]["store"] == "fingerprint"


class TestMultiObserver:
    def test_fans_out_in_order(self):
        first, second = Recorder(), Recorder()
        multi = MultiObserver(first, second)
        run = RunInfo(name="x", store="exact")
        multi.on_start(run)
        assert first.runs == [run] and second.runs == [run]
        result = explore(ChainSystem(3, loop=True), observer=multi)
        assert first.results[-1] is result
        assert len(first.levels) == len(second.levels) > 0
