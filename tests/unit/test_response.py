"""Unit tests for the leads-to checker (repro.check.response)."""

from repro import AsyncSystem, RefinementConfig, refine
from repro.check.response import (
    check_response,
    grant_edge,
)


class GraphSystem:
    """Explicit labelled graph {node: [(action, next)]}; completes=action."""

    def __init__(self, graph, init=0):
        self.graph = graph
        self.init = init

    def initial_state(self):
        return self.init

    def successors(self, state):
        return list(self.graph[state])


def edge_is(label):
    return lambda _s, action, _c, _n: action == label


class TestGraphLevel:
    def test_direct_response(self):
        system = GraphSystem({0: [("req", 1)], 1: [("grant", 0)]})
        report = check_response(system, request=lambda s: s == 1,
                                response=edge_is("grant"))
        assert report.ok
        assert report.n_request_states == 1

    def test_dodgeable_via_cycle(self):
        # from the request state you may loop on "spin" forever
        system = GraphSystem({
            0: [("req", 1)],
            1: [("grant", 0), ("spin", 2)],
            2: [("spin", 1)],
        })
        report = check_response(system, request=lambda s: s == 1,
                                response=edge_is("grant"))
        assert not report.ok
        assert report.failure_kind == "livelock"

    def test_dodgeable_via_deadlock(self):
        system = GraphSystem({0: [("req", 1)],
                              1: [("grant", 0), ("die", 2)],
                              2: []})
        report = check_response(system, request=lambda s: s == 1,
                                response=edge_is("grant"))
        assert not report.ok
        assert report.failure_kind == "deadlock"

    def test_unavoidable_response_through_branches(self):
        system = GraphSystem({
            0: [("req", 1)],
            1: [("a", 2), ("b", 3)],
            2: [("grant", 0)],
            3: [("grant", 0)],
        })
        report = check_response(system, request=lambda s: s == 1,
                                response=edge_is("grant"))
        assert report.ok

    def test_budget(self):
        system = GraphSystem({i: [("go", (i + 1) % 100)]
                              for i in range(100)})
        report = check_response(system, request=lambda s: False,
                                response=edge_is("x"), max_states=5)
        assert not report.completed


class TestOnProtocols:
    """The paper's fairness distinction, as temporal properties."""

    def test_some_remote_always_answered(self, migratory_refined):
        """Weak fairness: *a* grant always remains achievable."""
        system = AsyncSystem(migratory_refined, 2)
        report = check_response(
            system,
            request=lambda s: True,
            response=lambda _s, _a, completes, _n: bool(completes))
        assert report.ok

    def test_specific_remote_can_starve(self, migratory):
        """Strong fairness fails: remote 0's wait can be dodged forever
        (other remotes can monopolize the line) — paper section 6.

        With fusion, a requesting remote is transient at control state
        ``I`` (the grant arrives as the fused reply), so the request
        predicate matches on the transient mode.
        """
        refined = refine(migratory, RefinementConfig())
        system = AsyncSystem(refined, 3)
        report = check_response(
            system,
            request=lambda s: s.remotes[0].mode == "trans"
            and s.remotes[0].state == "I",
            response=grant_edge(0, {"gr"}),
            max_states=100_000)
        assert report.completed
        assert report.n_request_states > 0
        assert not report.ok  # r0 may be nacked/bypassed forever

    def test_single_remote_always_served(self, migratory_refined):
        """With no competition, the request is unavoidably answered."""
        system = AsyncSystem(migratory_refined, 1)
        report = check_response(
            system,
            request=lambda s: s.remotes[0].mode == "trans"
            and s.remotes[0].state == "I",
            response=grant_edge(0, {"gr"}))
        assert report.n_request_states > 0
        assert report.ok

    def test_describe(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 1)
        report = check_response(system, request=lambda s: True,
                                response=lambda *a: True)
        assert "RESPONSE GUARANTEED" in report.describe()
