"""Unit tests for the simulation oracles (repro.sim.oracle)."""

import pytest

from repro import invalidate_protocol, migratory_protocol, refine
from repro.errors import SimulationError
from repro.semantics.rendezvous import RendezvousStep
from repro.semantics.state import HOME_ID
from repro.sim import HotLineWorkload, Simulator, SyntheticWorkload
from repro.sim.oracle import CoherenceOracle, StarvationOracle


class TestCoherenceOracleUnit:
    def test_clean_chain_passes(self):
        oracle = CoherenceOracle(initial=0)
        oracle.observe(1.0, RendezvousStep(HOME_ID, 0, "gr", payload=0))
        oracle.observe(2.0, RendezvousStep(0, HOME_ID, "LR", payload=3))
        oracle.observe(3.0, RendezvousStep(HOME_ID, 1, "gr", payload=3))
        assert oracle.n_checked == 3

    def test_stale_grant_caught(self):
        oracle = CoherenceOracle(initial=0)
        oracle.observe(1.0, RendezvousStep(0, HOME_ID, "ID", payload=7))
        with pytest.raises(SimulationError, match="coherence violation"):
            oracle.observe(2.0, RendezvousStep(HOME_ID, 1, "gr", payload=0))

    def test_unrelated_messages_ignored(self):
        oracle = CoherenceOracle(initial=0)
        oracle.observe(1.0, RendezvousStep(HOME_ID, 0, "inv"))
        oracle.observe(2.0, RendezvousStep(0, HOME_ID, "req"))
        assert oracle.n_checked == 0


class TestStarvationOracleUnit:
    def test_balanced_completions_pass(self):
        oracle = StarvationOracle(n_remotes=2, threshold=3)
        for _round in range(10):
            oracle.observe(1.0, RendezvousStep(0, HOME_ID, "req"))
            oracle.observe(1.0, RendezvousStep(1, HOME_ID, "req"))

    def test_stalled_active_remote_alarms(self):
        oracle = StarvationOracle(n_remotes=2, threshold=3)
        oracle.observe(1.0, RendezvousStep(1, HOME_ID, "req"))  # r1 active
        with pytest.raises(SimulationError, match="starvation"):
            for _i in range(10):
                oracle.observe(2.0, RendezvousStep(0, HOME_ID, "req"))

    def test_never_active_remote_is_not_flagged(self):
        oracle = StarvationOracle(n_remotes=3, threshold=3)
        for _i in range(10):
            oracle.observe(1.0, RendezvousStep(0, HOME_ID, "req"))
            oracle.observe(1.0, RendezvousStep(1, HOME_ID, "req"))
        # r2 never participated; no alarm


class TestOraclesInSimulation:
    @pytest.mark.parametrize("build,kwargs", [
        (migratory_protocol, dict(data_values=4)),
        (invalidate_protocol, dict(data_values=3)),
    ])
    def test_coherence_holds_end_to_end(self, build, kwargs):
        refined = refine(build(**kwargs))
        oracle = CoherenceOracle(initial=0)
        sim = Simulator(refined, 4,
                        SyntheticWorkload(seed=5, write_fraction=0.8),
                        seed=5, oracles=(oracle,))
        metrics = sim.run(until=20_000)
        assert metrics.total_completions > 20
        assert oracle.n_checked > 10

    def test_no_starvation_under_hot_line(self):
        refined = refine(migratory_protocol())
        oracle = StarvationOracle(n_remotes=4, threshold=2_000)
        sim = Simulator(refined, 4, HotLineWorkload(seed=6), seed=6,
                        oracles=(oracle,))
        metrics = sim.run(until=20_000)
        assert metrics.total_completions > 100

    def test_oracle_failure_surfaces(self):
        """A deliberately lying oracle shows the hook is actually wired."""

        class AlwaysFails:
            def observe(self, now, rendezvous):
                raise SimulationError("injected")

        refined = refine(migratory_protocol())
        sim = Simulator(refined, 2, HotLineWorkload(seed=7), seed=7,
                        oracles=(AlwaysFails(),))
        with pytest.raises(SimulationError, match="injected"):
            sim.run(until=5_000)
