"""Unit tests for trace recording and MSC rendering."""

import pytest

from repro.semantics.network import ACK, REQ, Channels, Msg
from repro.sim import AccessClass, Simulator, TraceWorkload
from repro.sim.trace import TraceEvent, derive_message_events
from repro.viz.msc import render_msc


class TestDeriveMessageEvents:
    def test_send_detected_from_queue_growth(self):
        before = Channels.empty(2)
        after = before.send_to_home(1, Msg(kind=REQ, msg="req"))
        events = derive_message_events(5.0, before, after)
        assert len(events) == 1
        event = events[0]
        assert event.kind == "send"
        assert (event.src, event.dst) == ("r1", "h")
        assert "req" in event.label

    def test_delivery_detected_from_pop(self):
        before = Channels.empty(1).send_to_remote(0, Msg(kind=ACK))
        after = Channels.empty(1)
        events = derive_message_events(7.0, before, after,
                                       popped=Channels.to_remote(0))
        assert [e.kind for e in events] == ["deliver"]
        assert (events[0].src, events[0].dst) == ("h", "r0")

    def test_delivery_plus_response_send(self):
        # a delivery that triggers a send in the same step (e.g. C3 ack)
        before = Channels.empty(1).send_to_remote(
            0, Msg(kind=REQ, msg="inv"))
        after = Channels.empty(1).send_to_home(0, Msg(kind=ACK))
        events = derive_message_events(9.0, before, after,
                                       popped=Channels.to_remote(0))
        kinds = sorted(e.kind for e in events)
        assert kinds == ["deliver", "send"]

    def test_no_change_no_events(self):
        ch = Channels.empty(2)
        assert derive_message_events(1.0, ch, ch) == []


class TestSimulatorTrace:
    @pytest.fixture
    def traced_run(self, migratory_refined):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        sim = Simulator(migratory_refined, 2, workload, seed=0,
                        latency=5.0, latency_jitter=0.0, record_trace=True)
        sim.run(until=500)
        return sim

    def test_trace_records_full_transaction(self, traced_run):
        kinds = [e.kind for e in traced_run.trace]
        assert kinds.count("send") == 2       # fused req + repl:gr
        assert kinds.count("deliver") == 2
        assert kinds.count("complete") == 2   # req and gr rendezvous

    def test_trace_chronological(self, traced_run):
        times = [e.time for e in traced_run.trace]
        assert times == sorted(times)

    def test_trace_off_by_default(self, migratory_refined):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        sim = Simulator(migratory_refined, 2, workload, seed=0)
        sim.run(until=500)
        assert sim.trace == []

    def test_trace_deterministic(self, migratory_refined):
        def run():
            workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
            sim = Simulator(migratory_refined, 2, workload, seed=3,
                            record_trace=True)
            sim.run(until=500)
            return sim.trace

        assert run() == run()


class TestRenderMsc:
    def _events(self):
        return [
            TraceEvent(10.0, "send", "r0", "h", "req:req"),
            TraceEvent(15.0, "deliver", "r0", "h", "req:req"),
            TraceEvent(16.0, "deliver", "h", "r1", "ack"),
            TraceEvent(16.0, "complete", "r0", "h", "req"),
        ]

    def test_header_lanes(self):
        chart = render_msc(self._events(), 2)
        header = chart.splitlines()[0]
        assert "h" in header and "r0" in header and "r1" in header

    def test_sends_hidden_by_default(self):
        chart = render_msc(self._events(), 2)
        assert "(sent)" not in chart
        assert chart.count("req:req") == 1  # only the delivery row

    def test_show_sends(self):
        chart = render_msc(self._events(), 2, show_sends=True)
        assert "(sent)" in chart

    def test_completion_marks(self):
        chart = render_msc(self._events(), 2)
        assert "✓ req" in chart

    def test_truncation(self):
        events = self._events() * 10
        chart = render_msc(events, 2, max_events=3)
        assert "more events" in chart

    def test_end_to_end_chart(self, migratory_refined):
        workload = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        sim = Simulator(migratory_refined, 2, workload, seed=0,
                        latency=5.0, latency_jitter=0.0, record_trace=True)
        sim.run(until=500)
        chart = render_msc(sim.trace, 2)
        assert "repl:gr" in chart
        assert "✓ gr" in chart
