"""Unit tests for the Equation-1 checker (repro.check.simulation)."""

import pytest

from repro import RefinementConfig, refine
from repro.check.simulation import check_simulation
from repro.semantics.asynchronous import AsyncSystem


class TestMigratorySimulation:
    @pytest.mark.parametrize("n", [1, 2])
    def test_fused_holds(self, migratory_refined, n):
        report = check_simulation(AsyncSystem(migratory_refined, n))
        assert report.ok
        assert report.failures == []

    @pytest.mark.parametrize("n", [1, 2])
    def test_plain_holds_at_depth_one(self, migratory_refined_plain, n):
        """Un-fused refinement satisfies Equation 1 *exactly*."""
        report = check_simulation(AsyncSystem(migratory_refined_plain, n),
                                  max_depth=1)
        assert report.ok
        assert report.n_mapped_deep == 0

    def test_fused_needs_depth_two(self, migratory_refined):
        """Home-initiated fused pairs force the two-step form."""
        shallow = check_simulation(AsyncSystem(migratory_refined, 2),
                                   max_depth=1)
        assert not shallow.ok
        deep = check_simulation(AsyncSystem(migratory_refined, 2))
        assert deep.ok and deep.n_mapped_deep > 0


class TestReportContents:
    def test_counts_partition_edges(self, migratory_refined):
        report = check_simulation(AsyncSystem(migratory_refined, 2))
        assert (report.n_stutters + report.n_mapped + report.n_mapped_deep
                == report.n_edges_checked)
        assert report.n_async_states > report.n_abstract_states

    def test_describe(self, migratory_refined):
        report = check_simulation(AsyncSystem(migratory_refined, 1))
        assert "WEAK SIMULATION HOLDS" in report.describe()

    def test_incomplete_exploration_not_ok(self, migratory_refined):
        report = check_simulation(AsyncSystem(migratory_refined, 2),
                                  max_states=10)
        assert not report.ok
        assert any("incomplete" in f for f in report.failures)


class TestOtherProtocols:
    def test_invalidate_holds(self, invalidate_refined):
        report = check_simulation(AsyncSystem(invalidate_refined, 2))
        assert report.ok

    def test_msi_holds(self, msi_refined):
        report = check_simulation(AsyncSystem(msi_refined, 2))
        assert report.ok

    def test_bigger_buffer_still_simulates(self, migratory):
        refined = refine(migratory, RefinementConfig(home_buffer_capacity=4))
        assert check_simulation(AsyncSystem(refined, 2)).ok

    def test_no_ack_buffer_ablation_still_simulates(self, migratory):
        """Safety survives the ablation (only progress is at risk)."""
        refined = refine(migratory, RefinementConfig(
            reserve_ack_buffer=False))
        assert check_simulation(AsyncSystem(refined, 2)).ok
