"""Unit tests for ample-set partial-order reduction (repro.check.por).

The differential soundness evidence (verdict agreement between full and
reduced exploration) lives in ``tests/property/test_por_differential.py``;
this file pins the *mechanics*: footprints report exactly what a step
touches, the ample rule only ever picks steps satisfying the documented
side conditions, and the satellite optimizations (memoized canonical
keys, tuple-sliced ``with_remote``) behave.
"""

import pickle

import pytest

from repro import AsyncSystem, RendezvousSystem
from repro.check.explorer import explore
from repro.check.por import (
    PRESERVE_COUNTS,
    PRESERVE_INVARIANTS,
    PORSystem,
)
from repro.errors import CheckError
from repro.semantics.asynchronous import (
    DeliverToHome,
    DeliverToRemote,
    HomeStep,
    HomeTau,
    RemoteC3,
    RemoteSend,
    RemoteTau,
)
from repro.semantics.network import REQ, Channels
from repro.semantics.state import HOME_ID


@pytest.fixture(scope="module")
def mig2(migratory_refined):
    return AsyncSystem(migratory_refined, 2)


@pytest.fixture(scope="module")
def reachable(mig2):
    """All reachable async states of refined migratory at n=2."""
    result = explore(mig2, keep_graph=True, allow_deadlock=True)
    assert result.completed
    return list(result.graph)


def all_steps(system, states):
    for state in states:
        for step in system.steps(state):
            yield state, step


class TestFootprint:
    """footprint() is a structural diff — check it against the action
    taxonomy on every reachable (state, step) pair of a real protocol."""

    def test_owner_matches_action_class(self, mig2, reachable):
        for state, step in all_steps(mig2, reachable):
            fp = step.footprint(state)
            action = step.action
            if isinstance(action, (DeliverToRemote, RemoteSend,
                                   RemoteC3, RemoteTau)):
                assert fp.owner == action.remote
            else:
                assert fp.owner == HOME_ID

    def test_deliveries_pop_their_channel_head(self, mig2, reachable):
        seen_req_buffering = False
        for state, step in all_steps(mig2, reachable):
            fp = step.footprint(state)
            action = step.action
            if isinstance(action, DeliverToRemote):
                chan = Channels.to_remote(action.remote)
                assert fp.pop is not None and fp.pop[0] == chan
                assert fp.pop[1] == state.channels.queues[chan][0].kind
                if fp.pop[1] == REQ and not step.sends:
                    # REQ buffering: the only write is the remote's buffer
                    if fp.writes == {("r", action.remote, "buf")}:
                        seen_req_buffering = True
            elif isinstance(action, DeliverToHome):
                assert fp.pop is not None
                assert fp.pop[0] == Channels.to_home(action.remote)
            else:
                assert fp.pop is None
        assert seen_req_buffering  # the ample-candidate shape exists

    def test_pushes_match_sends(self, mig2, reachable):
        for state, step in all_steps(mig2, reachable):
            fp = step.footprint(state)
            assert len(fp.pushes) == len(step.sends)
            # in-flight delta is pushes minus the optional pop
            delta = (step.state.channels.total_in_flight
                     - state.channels.total_in_flight)
            assert delta == len(fp.pushes) - (1 if fp.pop else 0)

    def test_writes_localized_to_owner(self, mig2, reachable):
        """A remote-owned step never writes another node's fields."""
        for state, step in all_steps(mig2, reachable):
            fp = step.footprint(state)
            if fp.owner == HOME_ID:
                continue
            for tag in fp.writes:
                assert tag[0] == "r" and tag[1] == fp.owner

    def test_home_decision_writes_home(self, mig2, reachable):
        seen = False
        for state, step in all_steps(mig2, reachable):
            if not isinstance(step.action, (HomeStep, HomeTau)):
                continue
            seen = True
            fp = step.footprint(state)
            assert all(tag[0] == "h" for tag in fp.writes)
            assert fp.pop is None
        assert seen


class TestAmpleRule:
    """Every reduced state's singleton satisfies the documented side
    conditions, on every reachable state of the wrapped system."""

    @pytest.mark.parametrize("preserve",
                             [PRESERVE_COUNTS, PRESERVE_INVARIANTS])
    def test_ample_side_conditions(self, mig2, reachable, preserve):
        por = PORSystem(mig2, preserve=preserve)
        reduced_states = 0
        for state in reachable:
            full = mig2.steps(state)
            ample = por.ample(state, full)
            if ample is None:
                assert por.steps(state) == full  # C0: never empties
                continue
            reduced_states += 1
            action = ample.action
            # singleton, a delivery to a remote, from the enabled set
            assert por.steps(state) == [ample]
            assert isinstance(action, DeliverToRemote)
            assert ample in full and len(full) >= 2
            # no sends => strictly decreases in-flight (measure proviso)
            assert not ample.sends
            assert (ample.state.channels.total_in_flight
                    == state.channels.total_in_flight - 1)
            # sole enabled P(i) step: no local step of the same remote
            for other in full:
                if isinstance(other.action,
                              (RemoteSend, RemoteC3, RemoteTau)):
                    assert other.action.remote != action.remote
            if preserve == PRESERVE_INVARIANTS:
                fp = ample.footprint(state)
                assert fp.pop is not None and fp.pop[1] == REQ
                assert fp.writes <= {("r", action.remote, "buf")}
        assert reduced_states > 0  # the rule actually fires

    def test_invariants_preset_is_a_refinement_of_counts(self, mig2,
                                                         reachable):
        """Wherever the invariants preset reduces, counts reduces to the
        same singleton (it only weakens the visibility condition)."""
        counts = PORSystem(mig2, preserve=PRESERVE_COUNTS)
        inv = PORSystem(mig2, preserve=PRESERVE_INVARIANTS)
        for state in reachable:
            full = mig2.steps(state)
            inv_ample = inv.ample(state, full)
            if inv_ample is not None:
                counts_ample = counts.ample(state, full)
                assert counts_ample is not None
                assert counts_ample.action.remote \
                    <= inv_ample.action.remote

    def test_deterministic(self, mig2, reachable):
        por = PORSystem(mig2)
        for state in reachable[:200]:
            first = [s.action for s in por.steps(state)]
            second = [s.action for s in por.steps(state)]
            assert first == second

    def test_expand_reports_full_enabled_count(self, mig2, reachable):
        por = PORSystem(mig2, preserve=PRESERVE_COUNTS)
        saw_reduction = False
        for state in reachable:
            succs, enabled = por.expand(state)
            assert enabled == len(mig2.steps(state))
            assert len(succs) <= enabled
            if len(succs) < enabled:
                saw_reduction = True
                assert len(succs) == 1
        assert saw_reduction


class TestConstruction:
    def test_rejects_rendezvous_system(self, migratory):
        with pytest.raises(CheckError, match="asynchronous"):
            PORSystem(RendezvousSystem(migratory, 2))

    def test_rejects_unknown_preset(self, mig2):
        with pytest.raises(CheckError, match="preservation mode"):
            PORSystem(mig2, preserve="everything")

    def test_surface_passthrough(self, mig2):
        por = PORSystem(mig2)
        assert por.initial_state() == mig2.initial_state()
        assert por.n_remotes == 2
        assert por.protocol is mig2.protocol
        state = mig2.initial_state()
        step = mig2.steps(state)[0]
        assert por.apply(state, step.action) == step.state


class TestCanonicalKeyMemoization:
    """Satellite: canonical_key caches like __hash__ and the cache never
    leaks through pickling (fingerprints are process-seed dependent in
    spirit; the cache is simply recomputed on the other side)."""

    def test_cached_and_stable(self, mig2):
        state = mig2.initial_state()
        assert "_key_cache" not in vars(state)
        key = state.canonical_key()
        assert vars(state)["_key_cache"] is key
        assert state.canonical_key() is key  # same object, no recompute

    def test_pickle_drops_cache(self, mig2):
        state = mig2.steps(mig2.initial_state())[0].state
        key = state.canonical_key()
        state.channels.canonical_key()
        clone = pickle.loads(pickle.dumps(state))
        assert "_key_cache" not in vars(clone)
        assert "_key_cache" not in vars(clone.channels)
        assert "_key_cache" not in vars(clone.home)
        assert clone.canonical_key() == key

    def test_node_and_channel_keys_cached(self, mig2):
        state = mig2.initial_state()
        assert state.home.canonical_key() \
            is state.home.canonical_key()
        assert state.channels.canonical_key() \
            is state.channels.canonical_key()
        assert state.remotes[0].canonical_key() \
            is state.remotes[0].canonical_key()


class TestWithRemote:
    """Satellite: the tuple-slicing rewrite keeps semantics."""

    def test_replaces_only_target(self, migratory_refined):
        system = AsyncSystem(migratory_refined, 3)
        state = system.initial_state()
        for i in range(3):
            node = state.remotes[(i + 1) % 3]
            out = state.with_remote(i, node)
            assert out.remotes[i] is node
            for j in range(3):
                if j != i:
                    assert out.remotes[j] is state.remotes[j]
            assert out.home is state.home
            assert out.channels is state.channels
