"""Unit tests for the parameterized deadlock-freedom verdict (P45xx)."""

from repro.analysis import analyze_protocol
from repro.analysis.flows import derive_flows
from repro.analysis.paramcheck import (
    check_parameterized,
    generate_invariants,
    paramcheck_pass,
)
from repro.csp.ast import AnySender, VarSender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.protocols import mesi_protocol
from repro.refine.plan import RefinementConfig


def deadlocker():
    """Requester must send 'b' before home grants, but only after 'c'."""
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("a", sender=AnySender(), bind_sender="j", to="h1"))
    h.state("h1", inp("b", sender=VarSender("j"), to="h2"))
    h.state("h2", out("c", to="h0", target=VarTarget("j")))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("go", to="r0a"))
    r.state("r0a", out("a", to="r1"))
    r.state("r1", inp("c", to="r2"))
    r.state("r2", out("b", to="r0"))
    return protocol("stuckling", h, r)


def escaper():
    """Like deadlocker, but the blocked requester can tau back home."""
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("a", sender=AnySender(), bind_sender="j", to="h1"))
    h.state("h1", inp("b", sender=VarSender("j"), to="h2"))
    h.state("h2", out("c", to="h0", target=VarTarget("j")))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("go", to="r0a"))
    r.state("r0a", out("a", to="r1"))
    r.state("r1", out("b", to="r2"), tau("esc", to="r0"))
    r.state("r2", inp("c", to="r0"))
    return protocol("escaper", h, r)


def crosslock():
    """Two lock flows that can each wait on the other's requester."""
    h = ProcessBuilder.home("h", j=None, o=None)
    h.state("h0",
            inp("b", sender=AnySender(), bind_sender="j", to="hb"),
            inp("a", sender=AnySender(), bind_sender="j", to="ha",
                cond=lambda env, i, v: env["o"] is not None),
            inp("LR", sender=VarSender("o"), to="h0",
                update=lambda env: env.set("o", None)))
    h.state("hb", out("gb", to="h0", target=VarTarget("j"),
                      update=lambda env: env.update({"o": env["j"],
                                                     "j": None})))
    h.state("ha", inp("LR", sender=VarSender("o"), to="ha2"))
    h.state("ha2", out("ga", to="h0", target=VarTarget("j"),
                       update=lambda env: env.update({"o": env["j"],
                                                      "j": None})))
    r = ProcessBuilder.remote("r")
    r.state("r0", tau("wantB", to="r0b"), tau("wantA", to="r0a"))
    r.state("r0b", out("b", to="rb"))
    r.state("rb", inp("gb", to="owned"))
    r.state("r0a", out("a", to="ra"))
    r.state("ra", inp("ga", to="owned"))
    r.state("owned", tau("drop", to="r_lr"), tau("greedy", to="r0b"))
    r.state("r_lr", out("LR", to="r0"))
    return protocol("crosslock", h, r)


class TestLibraryDischarge:
    def test_all_four_protocols_discharge(self, migratory, invalidate, msi):
        for proto in (migratory, invalidate, msi, mesi_protocol()):
            verdict = check_parameterized(proto)
            assert verdict.discharged, [d.render()
                                        for d in verdict.obligations]
            assert verdict.verdict == "deadlock-free-any-N"
            assert verdict.graph.complete
            assert verdict.witness_completed
            assert verdict.witness_deadlocks == 0
            assert verdict.invariants

    def test_verdict_serializes(self, migratory):
        import json

        verdict = check_parameterized(migratory)
        doc = json.loads(json.dumps(verdict.as_dict()))
        assert doc["verdict"] == "deadlock-free-any-N"
        assert doc["witness"]["nodes"] == 2
        # only the P4505 discharge note, no warning-level obligations
        assert [d["code"] for d in doc["obligations"]] == ["P4505"]

    def test_discharge_survives_three_node_witness(self, migratory):
        verdict = check_parameterized(migratory, witness_nodes=3)
        assert verdict.discharged
        assert verdict.witness_nodes == 3


class TestObligations:
    def test_deadlocker_convicted(self):
        verdict = check_parameterized(deadlocker())
        assert not verdict.discharged
        codes = {d.code for d in verdict.obligations}
        assert "P4502" in codes  # the n=2 witness actually deadlocks
        assert verdict.witness_deadlocks > 0

    def test_escaper_invariants_fail_without_deadlock(self):
        # the requester *can* always escape, but the flow shape is broken:
        # invariants are falsified even though no deadlock exists
        verdict = check_parameterized(escaper())
        assert not verdict.discharged
        assert any(d.code in {"P4502", "P4504"} for d in verdict.obligations)

    def test_crosslock_two_flow_witness(self):
        verdict = check_parameterized(crosslock())
        assert not verdict.discharged
        cycles = [d for d in verdict.obligations if d.code == "P4502"]
        assert cycles
        # the diagnostic names both flows of the waits-for cycle
        assert any("a@h0" in d.message and "b@h0" in d.message
                   for d in cycles)

    def test_unbounded_fire_and_forget_is_p4503(self):
        h = ProcessBuilder.home("h")
        h.state("a", inp("n", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("n", to="a"))
        config = RefinementConfig(fire_and_forget=frozenset({"n"}))
        verdict = check_parameterized(protocol("noisy", h, r), config=config)
        assert any(d.code == "P4503" for d in verdict.obligations)

    def test_dropped_reservations_are_p4503(self, migratory):
        config = RefinementConfig(reserve_progress_buffer=False)
        verdict = check_parameterized(migratory, config=config)
        assert not verdict.discharged
        assert any(d.code == "P4503" for d in verdict.obligations)

    def test_obligations_never_errors(self):
        for proto in (deadlocker(), escaper(), crosslock()):
            report = analyze_protocol(proto)
            assert not [d for d in report.errors
                        if d.code.startswith("P45")]


class TestInvariantGeneration:
    def test_library_invariants_have_all_kinds(self, msi):
        graph = derive_flows(msi)
        invariants, _, untracked = generate_invariants(msi, graph)
        kinds = {i.kind for i in invariants}
        assert {"wait", "engaged", "waiting"} <= kinds
        assert untracked == ()

    def test_wait_invariants_carry_blame(self, migratory):
        graph = derive_flows(migratory)
        invariants, _, _ = generate_invariants(migratory, graph)
        waits = [i for i in invariants if i.kind == "wait"]
        assert waits
        for inv in waits:
            assert inv.wait is not None


class TestManagerIntegration:
    def test_pass_reports_p4505_on_clean_protocol(self, migratory):
        report = analyze_protocol(migratory)
        assert "P4505" in report.codes()
        assert "P4506" in report.codes()

    def test_pass_reports_obligations_on_broken_protocol(self):
        report = analyze_protocol(deadlocker())
        assert {"P4502"} & report.codes()
        assert "P4505" not in report.codes()

    def test_paramcheck_pass_uses_shared_graph(self, migratory):
        graph = derive_flows(migratory)
        diags = list(paramcheck_pass(migratory, graph=graph))
        assert any(d.code == "P4505" for d in diags)


class TestCacheSharing:
    def test_explain_pair_runs_at_most_once_per_pair(self, msi, monkeypatch):
        from repro.refine import reqreply as rq

        calls: dict[tuple[str, str, str], int] = {}
        original = rq.explain_pair

        def counting(protocol, pair, **kwargs):
            key = (pair.request_msg, pair.reply_msg, pair.requester)
            calls[key] = calls.get(key, 0) + 1
            return original(protocol, pair, **kwargs)

        monkeypatch.setattr(rq, "explain_pair", counting)
        report = analyze_protocol(msi)
        assert "P4505" in report.codes()
        assert calls, "explain_pair was never consulted"
        assert max(calls.values()) == 1, calls
