"""Geometry tests for the MSC renderer: arrows point the right way."""

from repro.sim.trace import TraceEvent
from repro.viz.msc import render_msc


def deliver(src, dst, label="msg", t=1.0):
    return TraceEvent(time=t, kind="deliver", src=src, dst=dst, label=label)


class TestArrowDirections:
    def test_rightward_arrow_home_to_remote(self):
        chart = render_msc([deliver("h", "r1", "gr")], 2)
        row = chart.splitlines()[1]
        assert "├" in row and "▶" in row
        assert row.index("├") < row.index("▶")

    def test_leftward_arrow_remote_to_home(self):
        chart = render_msc([deliver("r1", "h", "req")], 2)
        row = chart.splitlines()[1]
        assert "◀" in row and "┤" in row
        assert row.index("◀") < row.index("┤")

    def test_label_embedded_in_arrow(self):
        chart = render_msc([deliver("h", "r0", "hello")], 1)
        assert "hello" in chart.splitlines()[1]

    def test_bystander_lanes_keep_lifeline(self):
        chart = render_msc([deliver("h", "r0", "m")], 3)
        row = chart.splitlines()[1]
        # lanes r1 and r2 are untouched: vertical bars remain
        assert row.count("│") >= 2

    def test_far_lane_arrow_spans_middle(self):
        chart = render_msc([deliver("h", "r2", "m")], 3)
        row = chart.splitlines()[1]
        # the middle lanes are crossed by the arrow shaft
        assert "─" * 10 in row

    def test_time_column(self):
        chart = render_msc([deliver("h", "r0", "m", t=42.5)], 1)
        assert chart.splitlines()[1].startswith("42.50")
