"""The per-transition step table (refine.transitions).

The table is the single source of truth the asynchronous semantics and
the certificate checker both consume; these tests pin its derivation from
the refined AST (one row per output guard, correct kinds and control
targets) and the indexing/mutation API the differential harness relies
on.
"""

import pytest

from repro.errors import RefinementError, SemanticsError
from repro.protocols.handwritten import handwritten_migratory
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.refine.transitions import (
    HOME,
    KIND_NOTE,
    KIND_REPLY,
    KIND_REQUEST,
    REMOTE,
    StepTable,
    build_step_table,
)


@pytest.fixture(scope="module")
def table():
    return build_step_table(refine(migratory_protocol()))


class TestDerivation:
    def test_one_row_per_output_guard(self, table):
        refined = refine(migratory_protocol())
        n_outputs = sum(
            len(state.outputs)
            for process in (refined.protocol.home, refined.protocol.remote)
            for state in process.states.values())
        assert len(table) == n_outputs

    def test_remote_fused_request_row(self, table):
        spec = table.spec(REMOTE, "I", 0)
        assert spec.msg == "req"
        assert spec.kind == KIND_REQUEST
        assert spec.fused_reply == "gr"
        assert spec.reply_to == "I.gr"

    def test_home_fused_request_row(self, table):
        spec = table.spec(HOME, "I1", 0)
        assert spec.msg == "inv"
        assert spec.kind == KIND_REQUEST
        assert spec.fused_reply == "ID"
        assert spec.reply_to == "I2"

    def test_plain_request_rewind_and_forward(self, table):
        """A nack rewinds to the sending state, an ack fast-forwards to
        the guard's target — the Tables 1/2 rule schema verbatim."""
        spec = table.spec(REMOTE, "V.lr", 0)
        assert spec.msg == "LR"
        assert spec.kind == KIND_REQUEST
        assert spec.fused_reply is None
        assert spec.rewind_to == "V.lr"
        assert spec.forward_to == "I"

    def test_reply_rows_have_no_handshake(self, table):
        for spec in table:
            if spec.kind == KIND_REPLY:
                assert spec.fused_reply is None
                assert spec.reply_to is None

    def test_derived_lookups(self, table):
        assert table.fused_requests(REMOTE) == {"req"}
        assert table.fused_requests(HOME) == {"inv"}
        assert table.reply_of == {"req": "gr", "inv": "ID"}
        assert "gr" in table.reply_msgs and "ID" in table.reply_msgs
        assert table.notes == frozenset()

    def test_notes_for_fire_and_forget(self):
        table = build_step_table(handwritten_migratory())
        assert table.notes
        for spec in table:
            if spec.msg in table.notes:
                assert spec.kind == KIND_NOTE

    def test_describe_names_the_row(self, table):
        text = table.spec(REMOTE, "I", 0).describe()
        assert "remote.I[0]" in text
        assert "!req" in text
        assert "reply gr@I.gr" in text


class TestIndexing:
    def test_spec_raises_on_unknown_row(self, table):
        with pytest.raises(SemanticsError):
            table.spec(REMOTE, "I", 7)

    def test_get_returns_none_on_unknown_row(self, table):
        assert table.get(REMOTE, "no-such-state", 0) is None
        assert table.get(REMOTE, "I", 0) is table.spec(REMOTE, "I", 0)

    def test_duplicate_keys_rejected(self, table):
        specs = tuple(table) + (table.spec(REMOTE, "I", 0),)
        with pytest.raises(RefinementError):
            StepTable(specs)


class TestMutate:
    def test_mutate_replaces_one_row(self, table):
        mutant = table.mutate(REMOTE, "V.lr", 0, forward_to="V.id")
        assert mutant.spec(REMOTE, "V.lr", 0).forward_to == "V.id"
        # every other row unchanged
        for spec in table:
            if spec.key != (REMOTE, "V.lr", 0):
                assert mutant.spec(*spec.key) == spec

    def test_mutate_is_a_copy(self, table):
        original = table.spec(HOME, "I1", 0).rewind_to
        table.mutate(HOME, "I1", 0, rewind_to="F1")
        assert table.spec(HOME, "I1", 0).rewind_to == original

    def test_mutate_unknown_row_raises(self, table):
        with pytest.raises(SemanticsError):
            table.mutate(REMOTE, "I", 7, rewind_to="I")
