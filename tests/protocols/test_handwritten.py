"""Protocol tests: the hand-designed Avalanche migratory variant."""

import pytest

from repro import (
    AsyncSystem,
    MIGRATORY_SPEC,
    assert_safe,
    async_structural_invariants,
    check_progress,
    coherence_invariants,
    explore,
)
from repro.protocols.handwritten import HAND_CONFIG, handwritten_migratory
from repro.refine.abstraction import AbstractionUndefined, abstract_state
from repro.semantics.network import NOTE


class TestConstruction:
    def test_lr_is_fire_and_forget(self):
        refined = handwritten_migratory()
        assert refined.plan.fire_and_forget == frozenset({"LR"})

    def test_other_pairs_still_fused(self):
        refined = handwritten_migratory()
        assert {p.request_msg for p in refined.plan.fused} == {"req", "inv"}

    def test_hand_config_matches(self):
        assert HAND_CONFIG.fire_and_forget == frozenset({"LR"})
        assert HAND_CONFIG.home_buffer_capacity == 2


class TestCorrectDespiteNoLRAck:
    """The hand protocol is correct — it just cannot be proven by the
    refinement theorem and needs dedicated notification buffering."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_safe_and_coherent(self, n):
        refined = handwritten_migratory()
        invariants = (coherence_invariants(MIGRATORY_SPEC)
                      + async_structural_invariants(2))
        result = explore(AsyncSystem(refined, n), invariants=invariants)
        assert assert_safe(result).ok

    @pytest.mark.parametrize("n", [2, 3])
    def test_progress(self, n):
        refined = handwritten_migratory()
        assert check_progress(AsyncSystem(refined, n)).ok


class TestWhyThePaperKeepsTheAck:
    def test_abstraction_undefined_somewhere(self):
        """At least one reachable state has an un-abstractable in-flight
        LR — the refinement soundness proof does not cover this protocol."""
        refined = handwritten_migratory()
        system = AsyncSystem(refined, 2)
        result = explore(system, keep_graph=True, allow_deadlock=True)
        undefined = 0
        for state in result.graph:
            try:
                abstract_state(system, state)
            except AbstractionUndefined:
                undefined += 1
        assert undefined > 0

    def test_notes_can_stack_beyond_k(self):
        """With 3+ nodes the home can hold note(s) on top of a full request
        buffer: the hand design implicitly requires extra buffering."""
        refined = handwritten_migratory()
        system = AsyncSystem(refined, 3)
        result = explore(system, keep_graph=True, allow_deadlock=True)
        max_total = max(len(s.home.buffer) for s in result.graph)
        k = refined.plan.config.home_buffer_capacity
        assert max_total > k

    def test_saves_exactly_the_lr_ack(self):
        """Fewer messages in flight overall: no ACK ever chases an LR."""
        refined = handwritten_migratory()
        system = AsyncSystem(refined, 2)
        result = explore(system, keep_graph=True, allow_deadlock=True)
        # In the refined protocol an LR is acked; here LR travels as NOTE
        # and no ack for it exists anywhere.
        lr_notes = 0
        for state in result.graph:
            for _i, _d, msg in state.channels.in_flight():
                if msg.kind == NOTE:
                    assert msg.msg == "LR"
                    lr_notes += 1
        assert lr_notes > 0


class TestStateSpaceComparison:
    def test_hand_async_space_comparable_to_refined(self, migratory_refined):
        """Paper section 5: verifying the hand design is comparably hard."""
        hand = explore(AsyncSystem(handwritten_migratory(), 2)).n_states
        refined = explore(AsyncSystem(migratory_refined, 2)).n_states
        assert hand > refined / 3  # same order of magnitude
