"""Tests for the invariant library itself, including failure injection."""

from repro.csp.env import Env
from repro.protocols.invariants import (
    INVALIDATE_SPEC,
    MIGRATORY_SPEC,
    CoherenceSpec,
    async_structural_invariants,
    coherence_invariants,
    holders,
)
from repro.semantics.asynchronous import (
    AsyncState,
    BufEntry,
    HomeNode,
    RemoteNode,
    TRANS,
)
from repro.semantics.network import ACK, Channels, Msg
from repro.semantics.state import ProcState, RvState


def rv_state(home_state, *remote_states):
    return RvState(home=ProcState(home_state, Env()),
                   remotes=tuple(ProcState(s, Env()) for s in remote_states))


def async_state(remotes, buffer=(), channels=None, capacity_n=None):
    n = len(remotes)
    return AsyncState(
        home=HomeNode(state="F", env=Env(), buffer=tuple(buffer)),
        remotes=tuple(remotes),
        channels=channels or Channels.empty(n),
    )


class TestHolders:
    def test_rv_level_counts_states(self):
        state = rv_state("E", "V", "I", "V.lr")
        assert holders(state, MIGRATORY_SPEC.exclusive) == [0, 2]

    def test_async_level_ignores_transient_nodes(self):
        remotes = [
            RemoteNode(state="V", env=Env()),
            RemoteNode(state="V.lr", env=Env(), mode=TRANS, pending_out=0),
        ]
        state = async_state(remotes)
        assert holders(state, MIGRATORY_SPEC.exclusive) == [0]


class TestCoherenceInvariantInjection:
    def test_two_writers_flagged(self):
        name_to_fn = dict(coherence_invariants(MIGRATORY_SPEC))
        single_writer = name_to_fn["migratory: single-writer"]
        assert single_writer(rv_state("E", "V", "I"))
        assert not single_writer(rv_state("E", "V", "V"))

    def test_writer_with_reader_flagged(self):
        name_to_fn = dict(coherence_invariants(INVALIDATE_SPEC))
        swmr = name_to_fn["invalidate: no readers while a writer exists"]
        assert swmr(rv_state("E", "M", "I"))
        assert swmr(rv_state("Sh", "S", "S"))
        assert not swmr(rv_state("E", "M", "S"))

    def test_spec_without_shared_states_swmr_trivial(self):
        spec = CoherenceSpec(name="x", exclusive=frozenset({"V"}))
        swmr = dict(coherence_invariants(spec))[
            "x: no readers while a writer exists"]
        assert swmr(rv_state("E", "V", "V"))  # only single-writer can fail


class TestStructuralInvariantInjection:
    def _funcs(self, k=2):
        return dict(async_structural_invariants(k))

    def test_buffer_capacity(self):
        check = self._funcs(2)["home buffer within capacity"]
        ok = async_state([RemoteNode("I", Env())],
                         buffer=[BufEntry(0, "req"), BufEntry(0, "LR")])
        assert check(ok)
        over = async_state([RemoteNode("I", Env())],
                           buffer=[BufEntry(0, "req")] * 3)
        assert not check(over)

    def test_notes_exempt_from_capacity(self):
        check = self._funcs(2)["home buffer within capacity"]
        state = async_state(
            [RemoteNode("I", Env())],
            buffer=[BufEntry(0, "req"), BufEntry(0, "req"),
                    BufEntry(0, "LR", note=True)])
        assert check(state)

    def test_handshake_discipline(self):
        check = self._funcs()["per-channel handshake discipline"]
        ok = async_state([RemoteNode("I", Env())],
                         channels=Channels.empty(1).send_to_remote(
                             0, Msg(kind=ACK)))
        assert check(ok)
        double = Channels.empty(1).send_to_remote(0, Msg(kind=ACK)) \
            .send_to_remote(0, Msg(kind=ACK))
        assert not check(async_state([RemoteNode("I", Env())],
                                     channels=double))

    def test_transient_remote_with_buffer_flagged(self):
        check = self._funcs()["transient remotes hold no buffered request"]
        bad = async_state([RemoteNode("I", Env(), mode=TRANS, pending_out=0,
                                      buf=BufEntry("h", "inv"))])
        assert not check(bad)
