"""Protocol tests: migratory (paper Figures 2-5, section 5)."""

import pytest

from repro import (
    AsyncSystem,
    MIGRATORY_SPEC,
    RefinementConfig,
    RendezvousSystem,
    assert_safe,
    async_structural_invariants,
    check_progress,
    coherence_invariants,
    explore,
    migratory_protocol,
    refine,
)
from repro.refine.plan import HOME_SIDE, REMOTE, FusedPair


class TestStructureMatchesFigures:
    def test_home_states(self, migratory):
        assert set(migratory.home.states) == {"F", "F1", "E", "I1", "I2", "I3"}
        assert migratory.home.initial_state == "F"

    def test_remote_states(self, migratory):
        assert set(migratory.remote.states) == {"I", "I.gr", "V", "V.lr",
                                                "V.id"}
        assert migratory.remote.initial_state == "I"

    def test_explicit_rw_adds_intent_state(self, migratory_rw):
        assert "I.req" in migratory_rw.remote.states

    def test_home_edge_labels(self, migratory):
        home = migratory.home
        assert [g.msg for g in home.state("F").inputs] == ["req"]
        assert [g.msg for g in home.state("E").inputs] == ["LR", "req"]
        assert [g.msg for g in home.state("I1").outputs] == ["inv"]
        assert {g.msg for g in home.state("I2").inputs} == {"LR", "ID"}
        assert [g.msg for g in home.state("I3").outputs] == ["gr"]

    def test_remote_edge_labels(self, migratory):
        remote = migratory.remote
        assert {g.label for g in remote.state("V").taus} == {"evict"}
        assert {g.msg for g in remote.state("V").inputs} == {"inv"}
        assert [g.msg for g in remote.state("V.lr").outputs] == ["LR"]
        assert [g.msg for g in remote.state("V.id").outputs] == ["ID"]

    def test_refinement_fuses_figure_4_pairs(self, migratory_refined):
        assert set(migratory_refined.plan.fused) == {
            FusedPair("req", "gr", REMOTE),
            FusedPair("inv", "ID", HOME_SIDE),
        }


class TestRendezvousVerification:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_safe_and_coherent(self, migratory, n):
        result = explore(RendezvousSystem(migratory, n),
                         name=f"migratory-rv-{n}",
                         invariants=coherence_invariants(MIGRATORY_SPEC))
        assert assert_safe(result).ok

    @pytest.mark.parametrize("n", [2, 4])
    def test_progress(self, migratory, n):
        assert check_progress(RendezvousSystem(migratory, n)).ok

    def test_state_count_growth_is_polynomial(self, migratory):
        """The fused-intent model keeps idle remotes interchangeable."""
        counts = [explore(RendezvousSystem(migratory, n)).n_states
                  for n in (2, 4, 8)]
        assert counts[1] / counts[0] < 8
        assert counts[2] / counts[1] < 8

    def test_explicit_rw_blows_up_exponentially(self, migratory_rw):
        counts = [explore(RendezvousSystem(migratory_rw, n)).n_states
                  for n in (2, 4, 8)]
        # each idle remote contributes an independent intent bit
        assert counts[2] / counts[1] > 8


class TestAsyncVerification:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_safe_and_coherent(self, migratory_refined, n):
        invariants = (coherence_invariants(MIGRATORY_SPEC)
                      + async_structural_invariants(2))
        result = explore(AsyncSystem(migratory_refined, n),
                         name=f"migratory-async-{n}", invariants=invariants)
        assert assert_safe(result).ok

    @pytest.mark.parametrize("n", [2, 3])
    def test_progress(self, migratory_refined, n):
        assert check_progress(AsyncSystem(migratory_refined, n)).ok

    def test_async_much_larger_than_rendezvous(self, migratory,
                                               migratory_refined):
        """The paper's core empirical claim (Table 3's two columns)."""
        rv = explore(RendezvousSystem(migratory, 3)).n_states
        asyn = explore(AsyncSystem(migratory_refined, 3)).n_states
        assert asyn > 10 * rv

    def test_fusion_shrinks_async_space(self, migratory_refined,
                                        migratory_refined_plain):
        fused = explore(AsyncSystem(migratory_refined, 2)).n_states
        plain = explore(AsyncSystem(migratory_refined_plain, 2)).n_states
        assert fused < plain


class TestDataIntegrity:
    """With a real data domain, the migrating value is never corrupted."""

    @pytest.mark.parametrize("n", [1, 2])
    def test_value_conserved(self, n):
        proto = migratory_protocol(data_values=2)
        spec_invariants = coherence_invariants(MIGRATORY_SPEC)

        def no_value_forgery(state) -> bool:
            # the line's value lives in exactly one place: the single
            # holder's d, or (when free) the home's mem.  With domain 2 and
            # writes flipping the value, forgery would show as both the
            # home and a holder claiming different provenance... the
            # checkable core: the value is always within the domain.
            values = [state.home.env["mem"]]
            values += [r.env["d"] for r in state.remotes]
            return all(v in (0, 1) for v in values)

        result = explore(
            RendezvousSystem(proto, n),
            invariants=spec_invariants + [("domain", no_value_forgery)])
        assert assert_safe(result).ok

    def test_written_value_returns_home(self):
        """Drive a write in V; the LR must carry the written value."""
        from repro.semantics.rendezvous import RendezvousStep, TauStep
        from repro.semantics.state import HOME_ID
        proto = migratory_protocol(data_values=4)
        system = RendezvousSystem(proto, 1)
        s = system.initial_state()
        s = system.apply(s, RendezvousStep(0, HOME_ID, "req"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "gr", payload=0))
        s = system.apply(s, TauStep(proc=0, label="write"))
        s = system.apply(s, TauStep(proc=0, label="write"))
        assert s.remotes[0].env["d"] == 2
        s = system.apply(s, TauStep(proc=0, label="evict"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "LR", payload=2))
        assert s.home.env["mem"] == 2


class TestBufferCapacitySweep:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_any_capacity_verifies(self, migratory, k):
        refined = refine(migratory, RefinementConfig(home_buffer_capacity=k))
        result = explore(AsyncSystem(refined, 2),
                         invariants=async_structural_invariants(k))
        assert assert_safe(result).ok
