"""Cross-protocol contract tests: facts every library protocol must satisfy.

These guard against drift as protocols are added: each must validate,
refine, verify at N=1, render, carry a coherence spec whose state names
exist, a symmetry spec whose variables exist, and a workload spec that
gates every autonomous decision of the remote template (a forgotten gate
would make the simulator silently never fire that transition... or fire
it eagerly, which is worse).
"""

import pytest

from repro import (
    AsyncSystem,
    INVALIDATE_SPEC,
    MESI_SPEC,
    MIGRATORY_SPEC,
    MSI_SPEC,
    RendezvousSystem,
    assert_safe,
    explore,
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
    refine,
)
from repro.csp.ast import Output, Tau
from repro.protocols.symmetry import symmetry_spec_for
from repro.sim.policy import SEND, TAU, workload_spec_for

LIBRARY = [
    ("migratory", migratory_protocol, MIGRATORY_SPEC),
    ("invalidate", invalidate_protocol, INVALIDATE_SPEC),
    ("msi", msi_protocol, MSI_SPEC),
    ("mesi", mesi_protocol, MESI_SPEC),
]


@pytest.mark.parametrize("name,build,spec", LIBRARY)
class TestLibraryContract:
    def test_single_node_sane(self, name, build, spec):
        protocol = build()
        assert_safe(explore(RendezvousSystem(protocol, 1)))
        assert_safe(explore(AsyncSystem(refine(protocol), 1)))

    def test_coherence_spec_names_real_states(self, name, build, spec):
        protocol = build()
        states = set(protocol.remote.states)
        assert spec.exclusive <= states
        assert spec.shared <= states

    def test_symmetry_spec_names_real_vars(self, name, build, spec):
        protocol = build()
        symmetry = symmetry_spec_for(name)
        declared = set(protocol.home.initial_env)
        assert symmetry.id_vars <= declared
        assert symmetry.set_vars <= declared

    def test_workload_spec_gates_every_remote_decision(self, name, build,
                                                       spec):
        """Every tau (autonomous decision) and every output offered from
        the initial 'idle' region must be either gated or justified as
        protocol-internal.  Concretely: all taus reachable in the remote
        template are classified, except continuation taus inside internal
        states the gated tau already covers."""
        protocol = build()
        workload = workload_spec_for(name)
        ungated = []
        for state in protocol.remote.states.values():
            for guard in state.guards:
                if isinstance(guard, Tau):
                    if workload.classify(state.name, TAU,
                                         guard.label) is None:
                        ungated.append(f"{state.name}:{guard.label}")
        # library protocols gate every tau: the CPU/cache owns them all
        assert ungated == [], f"ungated remote taus in {name}: {ungated}"

    def test_acquire_complete_msgs_exist(self, name, build, spec):
        protocol = build()
        workload = workload_spec_for(name)
        assert workload.acquire_complete_msgs <= protocol.message_types

    def test_figures_render(self, name, build, spec):
        from repro.viz import process_dot, refined_ascii, refined_dot
        protocol = build()
        refined = refine(protocol)
        assert process_dot(protocol.home).startswith("digraph")
        assert "refined" in refined_ascii(refined, "remote")
        assert refined_dot(refined, "home").startswith("digraph")

    def test_initial_remote_state_is_decision_point(self, name, build,
                                                    spec):
        """The remote template starts idle: its initial state offers only
        gated choices (taus) or a gated send — never an ungated output."""
        protocol = build()
        workload = workload_spec_for(name)
        initial = protocol.remote.state(protocol.remote.initial_state)
        for guard in initial.guards:
            if isinstance(guard, Output):
                assert workload.classify(initial.name, SEND, None) \
                    is not None
            elif isinstance(guard, Tau):
                assert workload.classify(initial.name, TAU,
                                         guard.label) is not None
