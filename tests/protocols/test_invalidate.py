"""Protocol tests: invalidate (paper Table 3's second protocol)."""

import pytest

from repro import (
    AsyncSystem,
    INVALIDATE_SPEC,
    RendezvousSystem,
    assert_safe,
    async_structural_invariants,
    check_progress,
    coherence_invariants,
    explore,
)
from repro.protocols.invariants import holders
from repro.semantics.rendezvous import RendezvousStep, TauStep
from repro.semantics.state import HOME_ID


class TestStructure:
    def test_remote_states(self, invalidate):
        assert set(invalidate.remote.states) == {
            "I", "I.r", "I.grR", "I.w", "I.grW",
            "S", "S.ev", "S.ia", "M", "M.lr", "M.id"}

    def test_home_tracks_sharers_in_a_set(self, invalidate):
        assert invalidate.home.initial_env["S"] == frozenset()

    def test_messages(self, invalidate):
        assert invalidate.message_types == frozenset(
            {"reqR", "reqW", "grR", "grW", "evS", "invS", "IA",
             "inv", "ID", "LR"})


class TestRendezvousVerification:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_safe_and_coherent(self, invalidate, n):
        result = explore(RendezvousSystem(invalidate, n),
                         name=f"invalidate-rv-{n}",
                         invariants=coherence_invariants(INVALIDATE_SPEC))
        assert assert_safe(result).ok

    @pytest.mark.parametrize("n", [2, 3])
    def test_progress(self, invalidate, n):
        assert check_progress(RendezvousSystem(invalidate, n)).ok

    def test_growth_is_much_faster_than_migratory(self, migratory,
                                                  invalidate):
        """Table 3: invalidate is far more expensive at equal node count
        (sharer subsets + per-remote intent bits)."""
        mig = [explore(RendezvousSystem(migratory, n)).n_states
               for n in (2, 4)]
        inv = [explore(RendezvousSystem(invalidate, n)).n_states
               for n in (2, 4)]
        assert inv[0] > 10 * mig[0]
        assert inv[1] / inv[0] > mig[1] / mig[0]


class TestAsyncVerification:
    @pytest.mark.parametrize("n", [1, 2])
    def test_safe_and_coherent(self, invalidate_refined, n):
        invariants = (coherence_invariants(INVALIDATE_SPEC)
                      + async_structural_invariants(2))
        result = explore(AsyncSystem(invalidate_refined, n),
                         name=f"invalidate-async-{n}", invariants=invariants)
        assert assert_safe(result).ok

    def test_progress(self, invalidate_refined):
        assert check_progress(AsyncSystem(invalidate_refined, 2)).ok


class TestShareThenInvalidateScenario:
    def drive(self, system, state, action):
        return system.apply(state, action)

    def test_two_readers_then_writer(self, invalidate):
        system = RendezvousSystem(invalidate, 3)
        s = system.initial_state()
        # r0 and r1 take read copies
        for i in (0, 1):
            s = self.drive(s, s, None) if False else s
            s = system.apply(s, TauStep(proc=i, label="wantR"))
            s = system.apply(s, RendezvousStep(i, HOME_ID, "reqR"))
            s = system.apply(s, RendezvousStep(HOME_ID, i, "grR",
                                               payload="DATA"))
        assert s.home.state == "Sh"
        assert s.home.env["S"] == frozenset({0, 1})
        assert holders(s, INVALIDATE_SPEC.shared) == [0, 1]
        # r2 wants to write: home invalidates both sharers
        s = system.apply(s, TauStep(proc=2, label="wantW"))
        s = system.apply(s, RendezvousStep(2, HOME_ID, "reqW"))
        assert s.home.state == "W.chk"
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        assert s.home.env["t0"] == 0
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "invS"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "IA"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "invS"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "IA"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="done"))
        s = system.apply(s, RendezvousStep(HOME_ID, 2, "grW",
                                           payload="DATA"))
        assert s.home.state == "E" and s.home.env["o"] == 2
        assert holders(s, INVALIDATE_SPEC.exclusive) == [2]
        assert holders(s, INVALIDATE_SPEC.shared) == []

    def test_sharer_eviction_races_invalidation(self, invalidate):
        """A sharer evicting during the W loop is absorbed by evS guards."""
        system = RendezvousSystem(invalidate, 2)
        s = system.initial_state()
        s = system.apply(s, TauStep(proc=0, label="wantR"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "reqR"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "grR", payload="DATA"))
        s = system.apply(s, TauStep(proc=1, label="wantW"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "reqW"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        # r0 decides to evict before the invS rendezvous can happen
        s = system.apply(s, TauStep(proc=0, label="evict"))
        assert s.home.state == "W.send"
        s = system.apply(s, RendezvousStep(0, HOME_ID, "evS"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="done"))
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "grW", payload="DATA"))
        assert s.home.env["o"] == 1


class TestUpgradeByComposition:
    def test_sharer_must_evict_before_writing(self, invalidate):
        """The invalidate remote has no direct S -> M transition."""
        s_state = invalidate.remote.state("S")
        assert all(g.to in ("S.ev", "S.ia") for g in s_state.guards)
