"""Protocol tests: MSI with upgrade (library extension)."""

import pytest

from repro import (
    AsyncSystem,
    MSI_SPEC,
    RendezvousSystem,
    assert_safe,
    async_structural_invariants,
    check_progress,
    coherence_invariants,
    explore,
)
from repro.protocols.invariants import holders
from repro.semantics.rendezvous import RendezvousStep, TauStep
from repro.semantics.state import HOME_ID


class TestStructure:
    def test_upgrade_states_exist(self, msi):
        assert {"S.up", "S.grU"} <= set(msi.remote.states)
        assert {"U.chk", "U.send", "U.wait", "U.grant"} <= set(msi.home.states)

    def test_upgrade_grant_carries_no_data(self, msi):
        grant = msi.home.state("U.grant").outputs[0]
        assert grant.msg == "grU"
        assert grant.payload is None


class TestVerification:
    @pytest.mark.parametrize("n", [1, 2])
    def test_rendezvous_safe(self, msi, n):
        result = explore(RendezvousSystem(msi, n),
                         invariants=coherence_invariants(MSI_SPEC))
        assert assert_safe(result).ok

    def test_rendezvous_progress(self, msi):
        assert check_progress(RendezvousSystem(msi, 2)).ok

    def test_async_safe(self, msi_refined):
        invariants = (coherence_invariants(MSI_SPEC)
                      + async_structural_invariants(2))
        result = explore(AsyncSystem(msi_refined, 2), invariants=invariants)
        assert assert_safe(result).ok

    def test_async_progress(self, msi_refined):
        assert check_progress(AsyncSystem(msi_refined, 2)).ok


class TestUpgradeScenarios:
    def _share(self, system, s, i):
        s = system.apply(s, TauStep(proc=i, label="wantR"))
        s = system.apply(s, RendezvousStep(i, HOME_ID, "reqR"))
        return system.apply(s, RendezvousStep(HOME_ID, i, "grR",
                                              payload="DATA"))

    def test_successful_upgrade_invalidates_others_only(self, msi):
        system = RendezvousSystem(msi, 2)
        s = system.initial_state()
        s = self._share(system, s, 0)
        s = self._share(system, s, 1)
        # r0 upgrades: home must invalidate r1 but not r0
        s = system.apply(s, TauStep(proc=0, label="wantUp"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "reqU"))
        assert s.home.state == "U.chk" and s.home.env["j"] == 0
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        assert s.home.env["t0"] == 1  # the *other* sharer
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "invS"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "IA"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="done"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "grU"))
        assert s.remotes[0].state == "M"
        assert s.home.env["o"] == 0 and s.home.env["S"] == frozenset()
        assert holders(s, MSI_SPEC.exclusive) == [0]

    def test_competing_upgrade_denied(self, msi):
        """While invalidating for a writer, a sharer's upgrade is denied."""
        system = RendezvousSystem(msi, 3)
        s = system.initial_state()
        s = self._share(system, s, 0)
        s = self._share(system, s, 1)
        # r2 asks for write: home enters the W loop over sharers {0, 1}
        s = system.apply(s, TauStep(proc=2, label="wantW"))
        s = system.apply(s, RendezvousStep(2, HOME_ID, "reqW"))
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        assert s.home.state == "W.send"
        # r1 tries to upgrade concurrently
        s = system.apply(s, TauStep(proc=1, label="wantUp"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "reqU"))
        assert s.home.state == "W.send.deny"
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "upfail"))
        assert s.remotes[1].state == "S"  # back to plain sharer
        # the W loop continues and r1 is eventually invalidated normally
        s = system.apply(s, TauStep(proc=HOME_ID, label="more"))
        target = s.home.env["t0"]
        s = system.apply(s, RendezvousStep(HOME_ID, target, "invS"))
        s = system.apply(s, RendezvousStep(target, HOME_ID, "IA"))
        assert target in (0, 1)


class TestGeneralityClaim:
    def test_three_protocols_refine_with_one_engine(self, migratory_refined,
                                                    invalidate_refined,
                                                    msi_refined):
        """Paper section 8: the procedure applies to a class of protocols."""
        for refined in (migratory_refined, invalidate_refined, msi_refined):
            assert refined.plan.fused  # fusion found work in each
            result = explore(AsyncSystem(refined, 2), max_states=200_000)
            assert assert_safe(result).ok
