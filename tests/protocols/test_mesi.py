"""Protocol tests: MESI with exclusive-clean copies (library extension)."""

import pytest

from repro import (
    AsyncSystem,
    MESI_SPEC,
    RendezvousSystem,
    assert_safe,
    async_structural_invariants,
    check_progress,
    check_simulation,
    coherence_invariants,
    explore,
    mesi_protocol,
    refine,
)
from repro.protocols.invariants import holders
from repro.semantics.rendezvous import RendezvousStep, TauStep
from repro.semantics.state import HOME_ID


@pytest.fixture(scope="module")
def mesi():
    return mesi_protocol()


@pytest.fixture(scope="module")
def mesi_refined(mesi):
    return refine(mesi)


class TestStructure:
    def test_states(self, mesi):
        assert {"E", "M", "S", "I", "E.dc", "E.ic", "M.dd"} <= \
            set(mesi.remote.states)
        assert {"F", "X", "X.rw", "X.ww", "Sh", "W.chk"} <= \
            set(mesi.home.states)

    def test_silent_upgrade_is_a_tau(self, mesi):
        writes = [g for g in mesi.remote.state("E").taus
                  if g.label == "write"]
        assert len(writes) == 1 and writes[0].to == "M"

    def test_clean_evict_carries_no_data(self, mesi):
        evE = mesi.remote.state("E.ev").outputs[0]
        assert evE.msg == "evE" and evE.payload is None

    def test_dirty_writeback_carries_data(self, mesi):
        lr = mesi.remote.state("M.lr").outputs[0]
        assert lr.msg == "LR" and lr.payload is not None


class TestFusionDecisions:
    """The dual-reply structure must defeat fusion exactly where it should."""

    def test_plan(self, mesi_refined):
        fused = {(p.request_msg, p.reply_msg)
                 for p in mesi_refined.plan.fused}
        assert fused == {("reqW", "grM"), ("invS", "IA")}

    def test_reqr_not_fused_two_grants(self, mesi_refined):
        assert "reqR" not in {p.request_msg
                              for p in mesi_refined.plan.fused}

    def test_down_not_fused_clean_or_dirty_reply(self, mesi_refined):
        assert "down" not in {p.request_msg
                              for p in mesi_refined.plan.fused}
        assert "invX" not in {p.request_msg
                              for p in mesi_refined.plan.fused}


class TestVerification:
    @pytest.mark.parametrize("n", [1, 2])
    def test_rendezvous_safe(self, mesi, n):
        result = explore(RendezvousSystem(mesi, n),
                         invariants=coherence_invariants(MESI_SPEC))
        assert assert_safe(result).ok

    def test_rendezvous_progress(self, mesi):
        assert check_progress(RendezvousSystem(mesi, 2)).ok

    def test_async_safe(self, mesi_refined):
        invariants = (coherence_invariants(MESI_SPEC)
                      + async_structural_invariants(2))
        result = explore(AsyncSystem(mesi_refined, 2), invariants=invariants)
        assert assert_safe(result).ok

    def test_async_progress(self, mesi_refined):
        assert check_progress(AsyncSystem(mesi_refined, 2)).ok

    def test_weak_simulation(self, mesi_refined):
        assert check_simulation(AsyncSystem(mesi_refined, 2)).ok

    def test_data_domain_verifies(self):
        proto = mesi_protocol(data_values=2)
        result = explore(RendezvousSystem(proto, 2),
                         invariants=coherence_invariants(MESI_SPEC))
        assert assert_safe(result).ok


class TestScenarios:
    def _grant_exclusive(self, system, s, i):
        s = system.apply(s, TauStep(proc=i, label="wantR"))
        s = system.apply(s, RendezvousStep(i, HOME_ID, "reqR"))
        return system.apply(s, RendezvousStep(HOME_ID, i, "grE",
                                              payload="DATA"))

    def test_first_reader_gets_exclusive_clean(self, mesi):
        system = RendezvousSystem(mesi, 2)
        s = self._grant_exclusive(system, system.initial_state(), 0)
        assert s.remotes[0].state == "E"
        assert s.home.state == "X" and s.home.env["o"] == 0

    def test_clean_downgrade_on_second_reader(self, mesi):
        system = RendezvousSystem(mesi, 2)
        s = self._grant_exclusive(system, system.initial_state(), 0)
        s = system.apply(s, TauStep(proc=1, label="wantR"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "reqR"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "down"))
        assert s.remotes[0].state == "E.dc"
        s = system.apply(s, RendezvousStep(0, HOME_ID, "dnC"))
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "grS",
                                           payload="DATA"))
        assert s.home.state == "Sh"
        assert s.home.env["S"] == frozenset({0, 1})
        assert holders(s, MESI_SPEC.shared) == [0, 1]

    def test_dirty_downgrade_after_silent_write(self):
        proto = mesi_protocol(data_values=4)
        system = RendezvousSystem(proto, 2)
        s = system.initial_state()
        s = system.apply(s, TauStep(proc=0, label="wantR"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "reqR"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "grE", payload=0))
        s = system.apply(s, TauStep(proc=0, label="write"))  # silent E -> M
        assert s.remotes[0].state == "M"
        assert s.remotes[0].env["d"] == 1
        s = system.apply(s, TauStep(proc=1, label="wantR"))
        s = system.apply(s, RendezvousStep(1, HOME_ID, "reqR"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "down"))
        # the home gets the *dirty* reply and learns the new value
        s = system.apply(s, RendezvousStep(0, HOME_ID, "dnD", payload=1))
        assert s.home.env["mem"] == 1
        s = system.apply(s, RendezvousStep(HOME_ID, 1, "grS", payload=1))
        assert s.remotes[1].env["d"] == 1  # reader sees the silent write

    def test_clean_evict_keeps_home_value(self):
        proto = mesi_protocol(data_values=4)
        system = RendezvousSystem(proto, 1)
        s = system.initial_state()
        s = system.apply(s, TauStep(proc=0, label="wantR"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "reqR"))
        s = system.apply(s, RendezvousStep(HOME_ID, 0, "grE", payload=0))
        s = system.apply(s, TauStep(proc=0, label="evict"))
        s = system.apply(s, RendezvousStep(0, HOME_ID, "evE"))
        assert s.home.state == "F"
        assert s.home.env["mem"] == 0  # nothing travelled, nothing lost


class TestSimulation:
    def test_runs_with_coherence_oracle(self):
        from repro.sim import Simulator, SyntheticWorkload
        from repro.sim.oracle import CoherenceOracle
        refined = refine(mesi_protocol(data_values=4))
        oracle = CoherenceOracle(
            grant_msgs=frozenset({"grE", "grS", "grM"}),
            relinquish_msgs=frozenset({"LR", "ID", "dnD"}),
            initial=0)
        sim = Simulator(refined, 4,
                        SyntheticWorkload(seed=8, write_fraction=0.5),
                        seed=8, oracles=(oracle,))
        metrics = sim.run(until=20_000)
        assert metrics.total_completions > 20
        assert oracle.n_checked > 10

    def test_clean_evictions_save_data_transfers(self):
        """Read-only MESI traffic never writes back."""
        from repro.sim import Simulator, SyntheticWorkload
        refined = refine(mesi_protocol())
        sim = Simulator(refined, 4,
                        SyntheticWorkload(seed=9, write_fraction=0.0),
                        seed=9)
        metrics = sim.run(until=20_000)
        assert metrics.completions_by_type.get("LR", 0) == 0
        assert metrics.completions_by_type.get("dnD", 0) == 0
        assert (metrics.completions_by_type.get("evE", 0)
                + metrics.completions_by_type.get("evS", 0)
                + metrics.completions_by_type.get("dnC", 0)) > 0
