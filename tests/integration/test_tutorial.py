"""The tutorial's code blocks actually run (documentation rot protection).

Extracts every ```python fenced block from docs/TUTORIAL.md and executes
them sequentially in one namespace, exactly as a reader following along
would.  Output is swallowed; any exception fails the test.
"""

import contextlib
import io
import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"

BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_tutorial_blocks_execute():
    text = TUTORIAL.read_text()
    blocks = BLOCK.findall(text)
    assert len(blocks) >= 5, "tutorial lost its code blocks?"
    namespace: dict = {}
    sink = io.StringIO()
    for i, block in enumerate(blocks):
        with contextlib.redirect_stdout(sink):
            exec(compile(block, f"<tutorial block {i}>", "exec"),
                 namespace)  # noqa: S102 - executing our own docs
    # sanity: the walkthrough actually built and verified things
    assert "lock" in namespace
    assert "refined" in namespace
    output = sink.getvalue()
    assert "WEAK SIMULATION HOLDS" in output
    assert "PROGRESS GUARANTEED" in output
