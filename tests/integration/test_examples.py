"""Smoke tests: the shipped examples run and produce their artifacts.

The heavyweight studies (protocol comparison, starvation sweep) are
exercised through their helper functions at reduced horizons; the quick
ones run whole.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "WEAK SIMULATION HOLDS" in out
        assert "simulation (8 nodes" in out

    def test_regenerate_figures(self, tmp_path):
        out = run_example("regenerate_figures.py")
        assert "figure4_refined_home.dot" in out
        figdir = EXAMPLES / "output" / "figures"
        assert (figdir / "figure2_home.dot").exists()
        assert (figdir / "figure5_refined_remote.txt").exists()
        assert "digraph" in (figdir / "figure4_refined_home.dot").read_text()

    def test_custom_protocol(self):
        out = run_example("custom_protocol.py")
        assert "get/val (remote-initiated)" in out
        assert "deposits" in out

    def test_trace_walkthrough(self):
        out = run_example("trace_walkthrough.py")
        assert "implicit nack" in out
        assert "repl:gr" in out


class TestStudyHelpers:
    """Drive the heavier studies' helper functions at small horizons."""

    def test_protocol_comparison_run(self):
        module = runpy.run_path(str(EXAMPLES / "protocol_comparison.py"))
        module["HORIZON"] = 3000.0  # helpers read the module global
        metrics = module["run"](module["PROTOCOLS"]["invalidate"][0],
                                dict(write_fraction=0.2, think_time=40.0,
                                     hold_time=40.0))
        assert metrics.total_completions > 0

    def test_starvation_study_run(self):
        module = runpy.run_path(str(EXAMPLES / "starvation_study.py"))
        module["HORIZON"] = 3000.0
        metrics = module["run"](2, True)
        assert metrics.total_completions > 0

    def test_mailbox_protocol_importable(self):
        module = runpy.run_path(str(EXAMPLES / "custom_protocol.py"))
        proto = module["mailbox_protocol"]()
        assert proto.name == "mailbox"


@pytest.mark.parametrize("name", [
    "quickstart.py", "custom_protocol.py", "protocol_comparison.py",
    "starvation_study.py", "regenerate_figures.py",
    "trace_walkthrough.py",
])
def test_examples_have_docstrings_and_main(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith("#!/usr/bin/env python3")
    assert '"""' in text
    assert 'if __name__ == "__main__":' in text
