"""Soak tests: long timed runs at node counts beyond exhaustive checking.

Model checking is exhaustive only at small N; these runs push the same
transition core through millions of scheduled steps at 12 nodes, with the
semantics' internal assertions armed and the runtime oracles watching.
Any SemanticsError here would mean an interleaving class the small-N
exhaustive checks missed.
"""

import pytest

from repro import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
    refine,
)
from repro.protocols.handwritten import handwritten_migratory
from repro.sim import HotLineWorkload, Simulator, SyntheticWorkload
from repro.sim.oracle import CoherenceOracle

N = 12
HORIZON = 15_000.0


@pytest.mark.parametrize("build,grants,relinquishes", [
    (migratory_protocol, {"gr"}, {"LR", "ID"}),
    (invalidate_protocol, {"grR", "grW"}, {"LR", "ID"}),
    (msi_protocol, {"grR", "grW"}, {"LR", "ID"}),
    (mesi_protocol, {"grE", "grS", "grM"}, {"LR", "ID", "dnD"}),
])
def test_soak_with_coherence_oracle(build, grants, relinquishes):
    refined = refine(build(data_values=4))
    oracle = CoherenceOracle(grant_msgs=frozenset(grants),
                             relinquish_msgs=frozenset(relinquishes),
                             initial=0)
    sim = Simulator(refined, N,
                    SyntheticWorkload(seed=31, think_time=30.0,
                                      hold_time=10.0, write_fraction=0.6),
                    seed=31, oracles=(oracle,))
    metrics = sim.run(until=HORIZON)
    assert metrics.total_completions > 500
    assert oracle.n_checked > 200
    assert not metrics.starved_remotes


def test_soak_hand_protocol_under_contention():
    sim = Simulator(handwritten_migratory(), N, HotLineWorkload(seed=37),
                    seed=37)
    metrics = sim.run(until=HORIZON)
    assert metrics.total_completions > 1000
    assert metrics.fairness > 0.8


def test_soak_unfused_tiny_buffer():
    """The harshest configuration: plain refinement, k=2, full contention."""
    from repro import RefinementConfig
    refined = refine(migratory_protocol(),
                     RefinementConfig(use_reqreply=False))
    sim = Simulator(refined, N, HotLineWorkload(seed=41), seed=41)
    metrics = sim.run(until=HORIZON)
    assert metrics.total_completions > 1000
    assert metrics.messages_by_kind["NACK"] > 0  # contention was real
