"""Integration: the full pipeline (spec -> verify -> refine -> verify -> sim).

These tests exercise the complete methodology of the paper (section 2.3):
write the rendezvous protocol, model-check it cheaply, refine mechanically,
and obtain an asynchronous protocol whose correctness follows — which we
double-check the expensive way for good measure.
"""

import pytest

from repro import (
    AsyncSystem,
    INVALIDATE_SPEC,
    MIGRATORY_SPEC,
    MSI_SPEC,
    RefinementConfig,
    RendezvousSystem,
    assert_safe,
    async_structural_invariants,
    check_progress,
    check_simulation,
    coherence_invariants,
    explore,
    refine,
)
from repro.sim import Simulator, SyntheticWorkload


ALL = [
    ("migratory", "migratory", MIGRATORY_SPEC, 3),
    ("invalidate", "invalidate", INVALIDATE_SPEC, 2),
    ("msi", "msi", MSI_SPEC, 2),
]


@pytest.mark.parametrize("fixture_name,_label,spec,n", ALL)
def test_full_methodology(request, fixture_name, _label, spec, n):
    protocol = request.getfixturevalue(fixture_name)

    # 1. verify the rendezvous protocol (cheap)
    rendezvous = explore(RendezvousSystem(protocol, n),
                         invariants=coherence_invariants(spec))
    assert assert_safe(rendezvous).ok
    assert check_progress(RendezvousSystem(protocol, n)).ok

    # 2. refine mechanically
    refined = refine(protocol)

    # 3. the refinement theorem: weak simulation holds
    simulation = check_simulation(AsyncSystem(refined, min(n, 2)))
    assert simulation.ok

    # 4. belt and braces: direct asynchronous verification
    asynchronous = explore(
        AsyncSystem(refined, min(n, 2)),
        invariants=(coherence_invariants(spec)
                    + async_structural_invariants(2)))
    assert assert_safe(asynchronous).ok

    # 5. the refined protocol actually runs
    workload = SyntheticWorkload(seed=42, write_fraction=0.7)
    metrics = Simulator(refined, 4, workload, seed=42).run(until=10_000)
    assert metrics.total_completions > 10
    assert not metrics.starved_remotes


class TestVerificationCostStory:
    """Quantify the paper's headline: verify high-level, run low-level."""

    def test_rendezvous_cheaper_at_every_size(self, migratory,
                                              migratory_refined):
        for n in (2, 3):
            rv = explore(RendezvousSystem(migratory, n))
            asyn = explore(AsyncSystem(migratory_refined, n))
            assert rv.n_states * 5 < asyn.n_states

    def test_rendezvous_scales_where_async_cannot(self, migratory,
                                                  migratory_refined):
        budget = 50_000
        rv16 = explore(RendezvousSystem(migratory, 16), max_states=budget)
        assert rv16.completed
        async6 = explore(AsyncSystem(migratory_refined, 6),
                         max_states=budget)
        assert not async6.completed  # "Unfinished"


class TestConfigurationMatrix:
    """Every refinement configuration yields a correct protocol."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("reqreply", [True, False])
    def test_matrix(self, migratory, k, reqreply):
        refined = refine(migratory, RefinementConfig(
            home_buffer_capacity=k, use_reqreply=reqreply))
        result = explore(
            AsyncSystem(refined, 2),
            invariants=(coherence_invariants(MIGRATORY_SPEC)
                        + async_structural_invariants(k)))
        assert assert_safe(result).ok
        assert check_progress(AsyncSystem(refined, 2)).ok


class TestAblations:
    """The paper's design choices, demonstrated by switching them off."""

    def test_progress_buffer_prevents_livelock(self, migratory):
        base = RefinementConfig(use_reqreply=False)
        with_reservation = refine(migratory, base)
        assert check_progress(AsyncSystem(with_reservation, 4)).ok

        ablated = refine(migratory, RefinementConfig(
            use_reqreply=False, reserve_progress_buffer=False))
        report = check_progress(AsyncSystem(ablated, 4))
        assert not report.ok
        assert report.livelocks  # the exact failure of paper section 3.2

    def test_fusion_halves_uncontended_messages(self, migratory_refined,
                                                migratory_refined_plain):
        from repro.sim import AccessClass, TraceWorkload

        def run(refined):
            trace = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
            return Simulator(refined, 1, trace, seed=0).run(
                until=1000).total_messages

        assert run(migratory_refined) * 2 == run(migratory_refined_plain)
