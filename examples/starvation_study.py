#!/usr/bin/env python3
"""Fairness study: weak fairness, starvation windows, and buying them off.

Paper sections 2.5 and 6: the refinement guarantees that *some* remote
always makes progress with only a 2-slot home buffer; guaranteeing that
*every* remote progresses (strong fairness) would need a buffer of n — and
the practical middle ground is a shared pool sized by the CPU's maximum
outstanding transactions.

This study makes those trade-offs concrete on an 8-node hot line:

1. k=2: the system hums along (weak fairness) but individual nodes see
   long waits between successes and plenty of nacks;
2. k=n with reservations off: the home never nacks, and per-node service
   evens out — the section 6 configuration;
3. the model checker backs the simulator: progress (no livelock) holds for
   k=2, and the async state space grows only mildly with k.

Run:  python examples/starvation_study.py
"""

from repro import (
    AsyncSystem,
    RefinementConfig,
    check_progress,
    explore,
    migratory_protocol,
    refine,
)
from repro.sim import HotLineWorkload, Simulator

NODES = 8
HORIZON = 80_000.0


def run(k: int, reserve: bool, seed: int = 21):
    refined = refine(migratory_protocol(), RefinementConfig(
        home_buffer_capacity=k,
        reserve_progress_buffer=reserve,
        reserve_ack_buffer=reserve))
    sim = Simulator(refined, NODES, HotLineWorkload(seed=seed), seed=seed)
    return sim.run(until=HORIZON)


def main() -> None:
    print(f"hot line, {NODES} nodes, horizon {HORIZON:.0f}\n")
    print(f"{'config':<24} {'total':>7} {'min/node':>9} {'max/node':>9} "
          f"{'Jain':>6} {'worst wait':>11} {'nacks':>7}")
    for label, k, reserve in (("k=2 (paper minimum)", 2, True),
                              ("k=4", 4, True),
                              ("k=n, no reservations", NODES, False)):
        metrics = run(k, reserve)
        per_node = [metrics.completions_by_remote.get(i, 0)
                    for i in range(NODES)]
        worst = max(metrics.longest_wait.values(), default=0.0)
        print(f"{label:<24} {metrics.total_completions:>7} "
              f"{min(per_node):>9} {max(per_node):>9} "
              f"{metrics.fairness:>6.3f} {worst:>11.0f} "
              f"{metrics.messages_by_kind.get('NACK', 0):>7}")

    print("\nmodel-checked guarantees behind those numbers:")
    for k, reserve in ((2, True), (4, True)):
        refined = refine(migratory_protocol(), RefinementConfig(
            home_buffer_capacity=k,
            reserve_progress_buffer=reserve,
            reserve_ack_buffer=reserve))
        progress = check_progress(AsyncSystem(refined, 3))
        size = explore(AsyncSystem(refined, 3)).n_states
        print(f"  k={k}: {progress.describe()} "
              f"(async state space at n=3: {size})")

    print("\npaper section 6 sizing: strong fairness per line via a shared "
          "pool of\n  64 nodes x 8 outstanding + 1 = 513 slots "
          "(vs 65536 for naive per-line buffers)")


if __name__ == "__main__":
    main()
