#!/usr/bin/env python3
"""Message-by-message walkthrough of the refined migratory protocol.

Renders message-sequence charts (the protocol engineer's view) of three
scripted scenarios on the refined migratory protocol:

1. an uncontended acquire — the fused req/gr pair, 2 messages total;
2. a migration — the home revokes the line via the fused inv/ID pair and
   re-grants it, 4 messages for the whole ownership transfer;
3. the eviction race — the owner's LR crosses the home's inv on the wire;
   the implicit-nack rule (paper row T3) resolves it with no extra
   round-trips.

Run:  python examples/trace_walkthrough.py
"""

from repro import migratory_protocol, refine
from repro.sim import AccessClass, Simulator, TraceWorkload
from repro.viz import render_msc


def run_scenario(title, entries, n_remotes=2, until=600.0):
    refined = refine(migratory_protocol())
    sim = Simulator(refined, n_remotes, TraceWorkload(entries), seed=0,
                    latency=5.0, latency_jitter=0.0, record_trace=True)
    metrics = sim.run(until=until)
    print(f"\n=== {title} ===")
    print(render_msc(sim.trace, n_remotes))
    print(f"[{metrics.total_messages} messages, "
          f"{metrics.total_completions} rendezvous]")
    return metrics


def main() -> None:
    # 1. uncontended acquire: exactly REQ + REPL
    metrics = run_scenario(
        "uncontended acquire (fused req/gr: 2 messages)",
        [(10.0, 0, AccessClass.ACQUIRE)])
    assert metrics.total_messages == 2

    # 2. migration: r0 holds, r1 asks, home revokes and re-grants
    run_scenario(
        "migration r0 -> r1 (fused inv/ID revocation)",
        [(10.0, 0, AccessClass.ACQUIRE),
         (60.0, 1, AccessClass.ACQUIRE)])

    # 3. the race the transient states exist for: r0 evicts just as the
    # home tries to invalidate it.  The LR and the inv cross on the wire;
    # r0 (transient, waiting for the LR ack) drops the inv, and the home
    # treats r0's LR as an implicit nack of its own request (row T3).
    run_scenario(
        "eviction race: LR crosses inv (implicit nack, row T3)",
        [(10.0, 0, AccessClass.ACQUIRE),
         (100.0, 1, AccessClass.ACQUIRE),
         (100.0, 0, AccessClass.EVICT)])

    print("\nNote how scenario 3 never exchanges a nack message: the "
          "crossing request itself carries the information (the paper's "
          "implicit-nack rule), which is where the refined protocol's "
          "efficiency comes from.")


if __name__ == "__main__":
    main()
