#!/usr/bin/env python3
"""Regenerate the paper's Figures 1-5 as DOT and plain-text files.

Writes into ``examples/output/figures/``:

* Figure 1 — example communication-state shapes (home, remote active,
  remote passive with an autonomous decision);
* Figures 2/3 — the migratory rendezvous machines;
* Figures 4/5 — the refined asynchronous machines, transient states dotted,
  with both request/reply fusions and the implicit-nack edges;
* the hand-designed variant of Figure 5 (the "dotted lines are actions"
  difference the paper describes in section 5).

Render the ``.dot`` files with Graphviz if available:
``dot -Tpng figure4_refined_home.dot -o figure4.png``.

Run:  python examples/regenerate_figures.py
"""

from pathlib import Path

from repro import ProcessBuilder, inp, migratory_protocol, out, refine, tau
from repro.csp.ast import AnySender, VarSender, VarTarget
from repro.protocols.handwritten import handwritten_migratory
from repro.viz import process_ascii, process_dot, refined_ascii, refined_dot

OUT = Path(__file__).parent / "output" / "figures"


def figure1() -> dict[str, str]:
    home = ProcessBuilder.home("fig1a-home", i=0, j=0)
    home.state("s",
               inp("m1", sender=AnySender(), bind_sender="i", to="s"),
               out("m2", target=VarTarget("i"), to="s"),
               inp("m3", sender=VarSender("j"), to="s"))
    active = ProcessBuilder.remote("fig1b-remote")
    active.state("s", out("m", to="s"))
    passive = ProcessBuilder.remote("fig1c-remote")
    passive.state("s", inp("m1", to="s"), inp("m2", to="s2"),
                  tau("τ", to="s2"))
    passive.state("s2", out("m3", to="s"))
    return {
        "figure1a_home.txt": process_ascii(home.build()),
        "figure1b_remote_active.txt": process_ascii(active.build()),
        "figure1c_remote_passive.txt": process_ascii(passive.build()),
    }


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    protocol = migratory_protocol()
    refined = refine(protocol)
    hand = handwritten_migratory()

    artifacts = figure1()
    artifacts.update({
        "figure2_home.dot": process_dot(protocol.home,
                                        title="Figure 2: migratory home"),
        "figure2_home.txt": process_ascii(protocol.home),
        "figure3_remote.dot": process_dot(protocol.remote,
                                          title="Figure 3: migratory remote"),
        "figure3_remote.txt": process_ascii(protocol.remote),
        "figure4_refined_home.dot": refined_dot(
            refined, "home", title="Figure 4: refined migratory home"),
        "figure4_refined_home.txt": refined_ascii(refined, "home"),
        "figure5_refined_remote.dot": refined_dot(
            refined, "remote", title="Figure 5: refined migratory remote"),
        "figure5_refined_remote.txt": refined_ascii(refined, "remote"),
        "figure5_hand_remote.txt": refined_ascii(hand, "remote"),
        "figure4_hand_home.txt": refined_ascii(hand, "home"),
    })

    for name, text in sorted(artifacts.items()):
        path = OUT / name
        path.write_text(text + "\n")
        print(f"wrote {path}")

    print("\nPreview — Figure 5 (refined migratory remote):\n")
    print(artifacts["figure5_refined_remote.txt"])


if __name__ == "__main__":
    main()
