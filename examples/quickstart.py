#!/usr/bin/env python3
"""Quickstart: the paper's methodology end to end, on the migratory protocol.

The workflow of paper section 2.3:

1. write the protocol as a *rendezvous* (CSP-style) specification;
2. model-check it at that level — cheap, because the state space is tiny;
3. mechanically *refine* it into an asynchronous message-passing protocol
   (requests, acks, nacks, transient states, bounded home buffer);
4. trust the refinement theorem — and, here, machine-check it (Equation 1);
5. run the refined protocol on a simulated DSM machine.

Run:  python examples/quickstart.py
"""

from repro import (
    AsyncSystem,
    MIGRATORY_SPEC,
    RendezvousSystem,
    assert_safe,
    check_progress,
    check_simulation,
    coherence_invariants,
    explore,
    migratory_protocol,
    refine,
)
from repro.sim import Simulator, SyntheticWorkload
from repro.viz import protocol_summary


def main() -> None:
    # 1. the rendezvous protocol (paper Figures 2-3)
    protocol = migratory_protocol()
    print(f"protocol: {protocol.name}, messages: "
          f"{sorted(protocol.message_types)}")

    # 2. verify it at the rendezvous level — note the tiny state counts
    for n in (2, 4, 8):
        result = explore(RendezvousSystem(protocol, n),
                         name=f"rendezvous n={n}",
                         invariants=coherence_invariants(MIGRATORY_SPEC))
        assert_safe(result)
        print(" ", result.describe())
    print(" ", check_progress(RendezvousSystem(protocol, 4)).describe())

    # 3. refine into the asynchronous protocol (Figures 4-5)
    refined = refine(protocol)
    print(f"\nrefined: {protocol_summary(refined)}")

    # 4. the soundness theorem, machine-checked (paper section 4)
    report = check_simulation(AsyncSystem(refined, 2))
    print(" ", report.describe().splitlines()[0])

    # ... and the asynchronous state explosion the paper's method avoids:
    for n in (2, 3):
        result = explore(AsyncSystem(refined, n), name=f"async n={n}")
        print(" ", result.describe())

    # 5. run it on a simulated 8-node DSM machine
    workload = SyntheticWorkload(seed=1, think_time=60.0, hold_time=30.0,
                                 write_fraction=0.9)
    metrics = Simulator(refined, 8, workload, seed=1).run(until=50_000)
    print("\nsimulation (8 nodes, write-heavy migratory workload):")
    print(metrics.describe())


if __name__ == "__main__":
    main()
