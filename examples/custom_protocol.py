#!/usr/bin/env python3
"""Designing a *new* protocol with the library: a DSM mailbox line.

This example plays the role of the protocol designer the paper addresses:
instead of hand-crafting an asynchronous protocol with transient states, we
write the atomic-transaction (rendezvous) view of a small coordination
protocol, let the model checker vet it, and let the refinement engine
produce the asynchronous version.

The protocol: one memory line acts as a single-slot **mailbox**.  Each node
repeatedly deposits a value (``put``) and then withdraws one (``get``); the
home serializes deposits (a full mailbox accepts no ``put``) and hands the
stored value to the next ``get``.  Deadlock-freedom is a nice token-counting
argument — and the model checker confirms it mechanically.  The engine
auto-detects that ``get``/``val`` is a request/reply pair (2 messages) while
``put`` keeps its explicit ack (a full mailbox must be able to *refuse*).

Run:  python examples/custom_protocol.py
"""

from repro import (
    AsyncSystem,
    ProcessBuilder,
    RendezvousSystem,
    analyze_protocol,
    assert_safe,
    check_progress,
    check_simulation,
    explore,
    fusability_report,
    inp,
    out,
    protocol,
    refine,
    tau,
    validate_protocol,
)
from repro.csp.ast import AnySender, VarTarget
from repro.sim import AccessClass, Simulator, SyntheticWorkload, WorkloadSpec
from repro.viz import protocol_summary, refined_ascii


def mailbox_protocol(values: int = 3):
    """Single-slot mailbox: put blocks when full, get blocks when empty."""
    home = ProcessBuilder.home("mailbox-home", mem=0, j=None)
    home.state(
        "Empty",
        inp("put", sender=AnySender(), bind_value="mem", to="Full"),
    )
    home.state(
        "Full",
        inp("get", sender=AnySender(), bind_sender="j", to="Full.reply"),
    )
    home.state(
        "Full.reply",
        out("val", target=VarTarget("j"), payload=lambda env: env["mem"],
            update=lambda env: env.set("j", None), to="Empty"),
    )

    remote = ProcessBuilder.remote("mailbox-remote", c=0, d=0)
    remote.state("Idle", tau("work", to="P"))
    remote.state(
        "P",
        out("put", payload=lambda env: env["c"],
            update=lambda env: env.set("c", (env["c"] + 1) % values),
            to="G"),
    )
    remote.state("G", out("get", to="G.val"))
    remote.state("G.val", inp("val", bind_value="d", to="Idle"))

    return validate_protocol(protocol("mailbox", home, remote))


MAILBOX_WORKLOAD = WorkloadSpec(
    name="mailbox",
    gates={("Idle", "tau", "work"): AccessClass.ACQUIRE},
    acquire_complete_msgs=frozenset({"val"}),
)


def main() -> None:
    proto = mailbox_protocol()

    # 0. lint first: the static-analysis suite (docs/ANALYSIS.md) runs in
    #    milliseconds and catches spec bugs before any state space exists
    report = analyze_protocol(proto, nodes=6)
    print(report.render_text())
    assert report.ok, "mailbox protocol should lint clean at error severity"

    #    the section 3.3 fusability report explains each candidate pair:
    #    get/val fuses (put is not even a candidate — the depositor does
    #    not wait for a reply, so its ack must stay)
    print("\nfusability report:")
    for pair_report in fusability_report(proto):
        print(f"  {pair_report.describe()}")

    # 1. cheap rendezvous-level verification, incl. the token-counting
    #    deadlock-freedom argument — checked exhaustively instead of argued
    def mailbox_not_overwritten(state) -> bool:
        # Full only transitions via get: a put can never clobber mem.
        # (Structural, but let's keep the checker honest with a real
        # cross-process invariant: nobody holds a value that was never
        # deposited.)
        return all(r.env["d"] in (0, 1, 2) for r in state.remotes)

    for n in (2, 3, 4):
        result = explore(RendezvousSystem(proto, n),
                         invariants=[("values-in-domain",
                                      mailbox_not_overwritten)])
        assert_safe(result)
        print(f"rendezvous n={n}: {result.describe()}")
    print(check_progress(RendezvousSystem(proto, 3)).describe())

    # 2. refinement: the engine finds the get/val fusion on its own
    refined = refine(proto)
    print(f"\n{protocol_summary(refined)}")
    assert {(p.request_msg, p.reply_msg) for p in refined.plan.fused} == \
        {("get", "val")}
    print("\n" + refined_ascii(refined, "remote"))

    # 3. soundness, machine-checked
    print("\n" + check_simulation(AsyncSystem(refined, 2))
          .describe().splitlines()[0])

    # 4. run it: every deposited value is eventually withdrawn
    sim = Simulator(refined, 6, SyntheticWorkload(seed=3, think_time=40.0),
                    spec=MAILBOX_WORKLOAD, seed=3)
    metrics = sim.run(until=40_000)
    print("\nsimulation (6 nodes):")
    print(metrics.describe())
    puts = metrics.completions_by_type["put"]
    vals = metrics.completions_by_type["val"]
    print(f"\ndeposits: {puts}, withdrawals: {vals} "
          f"(difference <= 1 — the slot itself)")
    assert abs(puts - vals) <= 1


if __name__ == "__main__":
    main()
