#!/usr/bin/env python3
"""Domain study: which coherence protocol fits which sharing pattern?

The paper's motivating DSM systems (Avalanche, DASH, FLASH) shipped several
protocols because no single one wins everywhere.  This example uses the
library's simulator to quantify the folklore on a 12-node machine:

* **migratory** — the whole line moves to each accessor.  Great when data
  is written by whoever touches it (its namesake pattern); wasteful when
  many nodes only read.
* **invalidate** — read copies proliferate, writes invalidate them.  Great
  for read-mostly sharing; pays an invalidation burst per write.
* **msi (with upgrade)** — adds the upgrade transaction, sparing a sharer
  the evict-and-refetch round trip when it decides to write.

Run:  python examples/protocol_comparison.py
"""

from repro import invalidate_protocol, migratory_protocol, msi_protocol, refine
from repro.sim import Simulator, SyntheticWorkload

NODES = 12
HORIZON = 60_000.0

PROTOCOLS = {
    "migratory": (migratory_protocol, {}),
    "invalidate": (invalidate_protocol, {}),
    "msi+upgrade": (msi_protocol, {}),
}

PATTERNS = {
    # read_fraction is 1 - write_fraction
    "read-mostly (90% reads)": dict(write_fraction=0.1, think_time=40.0,
                                    hold_time=60.0),
    "mixed (50/50)": dict(write_fraction=0.5, think_time=40.0,
                          hold_time=30.0),
    "write-heavy (90% writes)": dict(write_fraction=0.9, think_time=40.0,
                                     hold_time=15.0),
}


def run(build, pattern_kwargs, seed=11):
    refined = refine(build())
    workload = SyntheticWorkload(seed=seed, upgrade_fraction=0.7,
                                 **pattern_kwargs)
    sim = Simulator(refined, NODES, workload, seed=seed)
    return sim.run(until=HORIZON)


def main() -> None:
    print(f"{NODES}-node DSM, horizon {HORIZON:.0f} time units\n")
    header = (f"{'pattern':<26} {'protocol':<12} {'acquires':>9} "
              f"{'msg/rdv':>8} {'p50 lat':>8} {'p99 lat':>8} {'nack%':>7}")
    print(header)
    print("-" * len(header))
    table = {}
    for pattern, kwargs in PATTERNS.items():
        for name, (build, _opts) in PROTOCOLS.items():
            metrics = run(build, kwargs)
            acquires = len(metrics.acquire_latencies)
            pct = metrics.latency_percentiles((50, 99)) or {50: 0, 99: 0}
            table[(pattern, name)] = (acquires, metrics)
            print(f"{pattern:<26} {name:<12} {acquires:>9} "
                  f"{metrics.messages_per_rendezvous:>8.2f} "
                  f"{pct[50]:>8.1f} {pct[99]:>8.1f} "
                  f"{metrics.nack_rate:>7.1%}")
        print()

    # the folklore, checked
    read_mig = table[("read-mostly (90% reads)", "migratory")][0]
    read_inv = table[("read-mostly (90% reads)", "invalidate")][0]
    print(f"read-mostly: invalidate served {read_inv} acquires vs "
          f"migratory's {read_mig} "
          f"({read_inv / max(read_mig, 1):.1f}x) — read copies are shared "
          "instead of bounced.")

    up_counts = table[("mixed (50/50)", "msi+upgrade")][1].completions_by_type
    granted = up_counts.get("grU", 0)
    denied = up_counts.get("upfail", 0)
    print(f"msi upgrade transactions: granted={granted}, denied={denied} — "
          "under this much write contention an upgrading sharer usually "
          "loses the race to a competing writer (the home is already "
          "invalidating on the writer's behalf), so the upgrade mostly "
          "converts to a denial plus an ordinary refetch. Upgrades pay off "
          "in read-mostly mixes with occasional writers.")


if __name__ == "__main__":
    main()
